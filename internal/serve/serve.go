// Package serve is the multi-tenant service layer over the X-Cache
// model: N controller shards over one shared banked DRAM channel, fed by
// per-tenant synthetic open-loop request streams (tenant count, key
// skew and burstiness are all parameters), with the robustness stack the
// paper's shared-resource positioning implies:
//
//   - bounded per-shard ingress queues with explicit backpressure
//     (forwarding stops on a full controller queue; admission sheds
//     beyond priority-scaled depth thresholds),
//   - admission control: per-tenant token buckets plus queue-depth load
//     shedding, every rejection a typed *OverloadError (ErrOverload),
//   - per-request deadlines with budgeted timeout/retry/backoff mapped
//     onto the check.FailureKind transient/permanent taxonomy,
//   - a per-shard circuit breaker that trips on sustained trap/timeout
//     rates and drains through the existing ctrl.Trap quiesce path,
//   - graceful degradation: the lowest-priority tenants shed first, and
//     the shared DRAM state is pinned by an exact-value oracle plus the
//     internal/check invariant checkers running inside the serve loop.
//
// Determinism is load-bearing: every arrival, key choice and fault is a
// stateless hash of (seed, stream, cycle, salt), so a run — including a
// full chaos soak — replays byte-for-byte from its seed at any
// TickWorkers setting.
package serve

import (
	"container/heap"
	"fmt"

	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
	"xcache/internal/stats"
)

// attemptBits is how many low bits of a controller request id carry the
// attempt number (the rest carry the request id), letting late responses
// from timed-out attempts be matched — and deduplicated — exactly.
const attemptBits = 3

// maxRetries is the largest per-request retry budget the attempt field
// can encode.
const maxRetries = (1 << attemptBits) - 2

// Config parameterises a Service. The zero value of every field selects
// a sensible default (see defaults()).
type Config struct {
	Shards   int           // controller shards (default 4, max 1024)
	Tenants  []TenantGroup // tenant mix (default: 8 tenants @ rate 0.01)
	Keys     int           // shared key-space size (default 1<<16)
	Duration int           // arrival window, cycles (default 50_000)
	// MaxCycles bounds the whole run including drain (default 4×Duration).
	MaxCycles int
	Seed      uint64
	// Overload multiplies every tenant's *offered* arrival rate without
	// touching the admitted (token-bucket) rates: 2.0 is the canonical
	// "2× overload" experiment. Default 1.
	Overload float64

	Shard core.Config  // per-shard cache geometry (default: scaled Widx point)
	Spec  program.Spec // walker program (default: array-walk)
	DRAM  dram.Config  // per-channel geometry/timing (default dram.DefaultConfig)

	// Channels is the number of independent DRAM channels behind the mux
	// (default 1, max 64). Each channel is a full dram.DRAM with its own
	// banks, queues and data bus over the shared image.
	Channels int
	// ChannelPolicy steers requests across healthy channels:
	// PolicyInterleave (default, row-granular address interleave) or
	// PolicyAffine (shard mod Channels).
	ChannelPolicy ChannelPolicy
	// ChannelWatchdog is how many silent cycles (no channel progress
	// with work pending) before the mux quarantines a channel and
	// re-steers its traffic (default 512; meaningful only with ≥2
	// channels).
	ChannelWatchdog int
	// SLOEpoch is the SLO governor's evaluation period in cycles
	// (default 1024). Tenants acquire SLOs via TenantGroup.SLO.
	SLOEpoch int

	IngressDepth int     // per-shard ingress queue depth (default 64)
	ForwardPer   int     // max ingress→controller forwards per shard per cycle (default 8)
	BucketRate   float64 // token-bucket refill per tenant per cycle (0 → 1.25× the group rate)
	BucketBurst  float64 // token-bucket capacity (default 8)
	Deadline     int     // per-request lifetime, cycles (default 8192)
	Timeout      int     // per-attempt timeout, cycles (default 2048)
	Retries      int     // extra attempts after the first (default 2, max 6)
	Backoff      int     // base retry backoff, doubles per attempt (default 64)

	Breaker     BreakerConfig
	Watchdog    int               // stall window (default 50_000; must exceed Deadline)
	TickWorkers int               // parallel shard ticking (≤1 serial; results identical)
	Faults      check.FaultConfig // chaos injection (zero value = none)

	// Expect is the response oracle: the value every OK response for key
	// must carry, and whether the key exists at all. The default oracle
	// says every key is present with the seeded array value — which is
	// exactly what makes "never corrupt shared DRAM state" checkable: any
	// OK response with the wrong value is a fatal invariant violation,
	// and any NotFound for a present key is a counted trap casualty.
	Expect func(key uint64) (value uint64, present bool)
}

func (c *Config) defaults() error {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 1 || c.Shards > 1024 {
		return fmt.Errorf("serve: Shards %d outside [1, 1024]", c.Shards)
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantGroup{{Count: 8, Rate: 0.01}}
	}
	for i, g := range c.Tenants {
		if err := g.validate(); err != nil {
			return fmt.Errorf("serve: tenant group %d: %w", i, err)
		}
	}
	if c.Keys == 0 {
		c.Keys = 1 << 16
	}
	if c.Keys < 1 || c.Keys > 1<<26 {
		return fmt.Errorf("serve: Keys %d outside [1, 1<<26]", c.Keys)
	}
	if c.Duration == 0 {
		c.Duration = 50_000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 4 * c.Duration
	}
	if c.Overload == 0 {
		c.Overload = 1
	}
	if c.Overload < 0 {
		return fmt.Errorf("serve: Overload %v negative", c.Overload)
	}
	if c.Shard.Sets == 0 {
		c.Shard = DefaultShardConfig()
	}
	if len(c.Spec.Transitions) == 0 {
		c.Spec = ArraySpec()
	}
	if c.DRAM.Banks == 0 {
		c.DRAM = dram.DefaultConfig()
	}
	if c.Channels == 0 {
		c.Channels = 1
	}
	if c.Channels < 1 || c.Channels > 64 {
		return fmt.Errorf("serve: Channels %d outside [1, 64]", c.Channels)
	}
	for i, f := range c.Faults.Channels {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("serve: channel fault %d: %w", i, err)
		}
		if f.Channel >= c.Channels {
			return fmt.Errorf("serve: channel fault %d targets channel %d of %d", i, f.Channel, c.Channels)
		}
	}
	if c.ChannelWatchdog == 0 {
		c.ChannelWatchdog = chanWatchdogDefault
	}
	if c.ChannelWatchdog < 0 {
		return fmt.Errorf("serve: ChannelWatchdog %d negative", c.ChannelWatchdog)
	}
	if c.SLOEpoch == 0 {
		c.SLOEpoch = sloEpochDefault
	}
	if c.SLOEpoch < 1 {
		return fmt.Errorf("serve: SLOEpoch %d not positive", c.SLOEpoch)
	}
	if c.IngressDepth == 0 {
		c.IngressDepth = 64
	}
	if c.ForwardPer == 0 {
		c.ForwardPer = 8
	}
	if c.BucketBurst == 0 {
		c.BucketBurst = 8
	}
	if c.Deadline == 0 {
		c.Deadline = 8192
	}
	if c.Timeout == 0 {
		c.Timeout = 2048
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 || c.Retries > maxRetries {
		return fmt.Errorf("serve: Retries %d outside [0, %d]", c.Retries, maxRetries)
	}
	if c.Backoff == 0 {
		c.Backoff = 64
	}
	if c.Watchdog == 0 {
		c.Watchdog = 50_000
	}
	if c.Watchdog > 0 && c.Watchdog <= c.Deadline {
		// A request parked in ingress behind an open breaker makes no
		// queue progress until its deadline; the watchdog window must
		// out-wait that or healthy sheds read as stalls.
		return fmt.Errorf("serve: Watchdog %d must exceed Deadline %d", c.Watchdog, c.Deadline)
	}
	return nil
}

// DefaultShardConfig is the per-shard cache geometry: a Widx-like design
// point scaled to service duty (more walkers than the paper's per-DSA
// configs, small response payloads).
func DefaultShardConfig() core.Config {
	return core.Config{
		Name: "shard", Sets: 256, Ways: 4, WordsPerSector: 4,
		NumActive: 16, NumExe: 4, RespDataWords: 2,
		MetaQueueDepth: 32, RespQueueDepth: 64,
	}
}

// ArraySpec is the default walker: array[key] lookup against the shared
// image (e0 = array base), the minimal single-fill program so service
// behavior is dominated by the robustness stack, not the walk.
func ArraySpec() program.Spec {
	return program.Spec{
		Name:   "servewalk",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

// reqState tracks one accepted request from admission to resolution.
type reqState struct {
	id       uint64
	tenant   int32
	shard    int32
	attempt  uint8 // current attempt number (0-based)
	probe    bool  // half-open breaker probe
	key      uint64
	gen      sim.Cycle // admission cycle
	deadline sim.Cycle
}

// inflightRec is a shard's record of one forwarded attempt, scanned in
// forward order for timeouts (resolved entries are skipped lazily).
type inflightRec struct {
	id      uint64
	attempt uint8
	at      sim.Cycle
}

type shardState struct {
	idx     int
	cache   *core.Cache
	ingress *sim.Queue[uint64]
	br      breaker

	inflight []inflightRec
	head     int

	forwarded uint64
	timeouts  uint64
	bpCycles  uint64 // cycles forwarding stopped on a full controller queue
	lastTraps uint64 // last observed ctrl.Stats().Traps (for deltas)
}

type tenantState struct {
	group    int
	prio     int
	rate     float64
	skew     float64
	burstLen int
	burstOn  float64
	phase    uint64 // burst phase offset (hash of tenant index)

	tokens     float64
	bucketRate float64

	// Conservation counters: generated == completed + shed* + failed*.
	generated      uint64
	completed      uint64
	shedRate       uint64
	shedQueue      uint64
	shedBreaker    uint64
	shedSLO        uint64
	failedDeadline uint64
	failedTrap     uint64
	retries        uint64
	notFound       uint64 // genuine absent-key answers (still completions)

	lat    stats.Histogram
	latSum uint64
	latMax uint64

	// SLO governor state (zero-valued and inert when slo == 0).
	slo           uint64  // p99 budget in cycles
	sloFactor     float64 // admission scale in [sloFloor, 1]
	healthyStreak int     // consecutive healthy epochs
	sloThrottles  uint64  // multiplicative-decrease steps taken
	sloMet        uint64  // measured requests within budget (lifetime)
	sloMeasured   uint64  // measured requests (completions + failures)
	epochLat      stats.Histogram
	epochN        uint64
	epochMax      uint64
	epochMet      uint64
	epochTotal    uint64
}

// retryEntry schedules re-issue of a timed-out request.
type retryEntry struct {
	due     sim.Cycle
	id      uint64
	attempt uint8
}

type retryHeap []retryEntry

func (h retryHeap) Len() int { return len(h) }
func (h retryHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].id < h[j].id
}
func (h retryHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x any)      { *h = append(*h, x.(retryEntry)) }
func (h *retryHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h retryHeap) peek() retryEntry { return h[0] }

// Service is the sharded multi-tenant front end. Build one with New,
// drive it with Run.
type Service struct {
	Cfg Config
	K   *sim.Kernel

	img     *mem.Image
	base    uint64
	chans   []*dram.DRAM
	mux     *dramMux
	shards  []*shardState
	tenants []tenantState
	h       *check.Harness
	inj     *check.Injector

	// SLO governor fleet state, indexed by priority.
	sloAny        bool
	sloGoverned   [8]bool
	sloEpochMet   [8]uint64
	sloEpochTotal [8]uint64
	sloSeries     [8][]float64

	reqs    map[uint64]*reqState
	nextID  uint64
	pending uint64
	retries retryHeap
	fatal   error

	accepted  uint64
	completed uint64
	shed      uint64
	failed    uint64
	reissues  uint64
}

// saltedQueue decorates a queue's diagnostic name so the fault
// injector's clog stream decorrelates across shards (every shard's
// controller queues share the same base names).
type saltedQueue struct {
	sim.Clogger
	salt string
}

func (s saltedQueue) Name() string { return s.salt }

// New assembles the service: shared image + DRAM, per-shard caches
// behind the channel mux, tenant streams, the supervision harness, and
// (when configured) the chaos injector.
func New(cfg Config) (*Service, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	s := &Service{Cfg: cfg, K: k, img: img, reqs: make(map[uint64]*reqState)}

	// Seeded array contents: the oracle for every OK response.
	s.base = img.AllocWords(cfg.Keys)
	for i := 0; i < cfg.Keys; i++ {
		img.W64(s.base+uint64(i)*8, s.valueOf(uint64(i)))
	}
	if s.Cfg.Expect == nil {
		s.Cfg.Expect = func(key uint64) (uint64, bool) { return s.valueOf(key), true }
	}

	// M independent channels over the shared image. A single channel
	// keeps the historical "dram" queue names (byte-compatible reports);
	// multi-channel runs name each channel so diagnostics and the
	// injector's per-queue clog streams stay distinguishable.
	for i := 0; i < cfg.Channels; i++ {
		dcfg := cfg.DRAM
		if cfg.Channels > 1 {
			dcfg.Name = fmt.Sprintf("dram%d", i)
		}
		s.chans = append(s.chans, dram.New(k, dcfg, img))
	}

	var ctrls []sim.Component
	memReqs := make([]*sim.Queue[dram.Request], cfg.Shards)
	memResps := make([]*sim.Queue[dram.Response], cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		memReqs[i] = sim.NewQueue[dram.Request](k, fmt.Sprintf("serve.mem%d.req", i), 64)
		memResps[i] = sim.NewQueue[dram.Response](k, fmt.Sprintf("serve.mem%d.resp", i), 64)
		shardCfg := cfg.Shard
		shardCfg.Name = fmt.Sprintf("shard%d", i)
		cache, err := core.Build(k, shardCfg, cfg.Spec, memReqs[i], memResps[i], &energy.Counters{})
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		cache.SetEnv(0, s.base)
		sh := &shardState{idx: i, cache: cache, br: newBreaker(cfg.Breaker)}
		sh.ingress = sim.NewQueue[uint64](k, fmt.Sprintf("serve.ingress%d", i), cfg.IngressDepth)
		s.shards = append(s.shards, sh)
		ctrls = append(ctrls, cache.Ctrl)
	}
	s.mux = newDRAMMux(k, s.chans, cfg.ChannelPolicy, cfg.ChannelWatchdog, memReqs, memResps)
	k.Add(s)

	// Shard controllers are mutually independent within a cycle (they
	// communicate only through queues they own, and staged pushes commit
	// after all ticks), so they form one parallel tick group. Serial and
	// parallel execution are result-identical; TickWorkers only sets the
	// wall-clock fan-out.
	if err := k.Parallelize(ctrls...); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	k.SetTickWorkers(cfg.TickWorkers)

	// Supervision: watchdog + invariant checkers run inside the serve
	// loop. Faults are wired manually below — check.Attach's automatic
	// wiring cannot see through the channel mux.
	s.h = check.Attach(k, &check.Config{Watchdog: cfg.Watchdog, Invariants: true, Seed: cfg.Seed})

	if cfg.Faults.Any() {
		s.inj = check.NewInjector(cfg.Seed, cfg.Faults, k)
		for i, d := range s.chans {
			if cfg.Faults.DropResp > 0 || cfg.Faults.DelayResp > 0 {
				d.Faults = s.inj
			}
			if dis := s.inj.ChannelDisruptor(i); dis != nil {
				d.Disrupt = dis
			}
		}
		for i, sh := range s.shards {
			c := sh.cache.Ctrl
			if cfg.Faults.FillTimeout >= 0 {
				c.Cfg.FillTimeout = cfg.Faults.FillTimeout
				if c.Cfg.FillTimeout == 0 {
					c.Cfg.FillTimeout = 1024
				}
			}
			if cfg.Faults.FlipBit > 0 {
				c.Cfg.ParityCheck = true
				s.inj.WatchTags(c.Tags)
			}
			if cfg.Faults.ClogQueue > 0 {
				for _, q := range c.FaultQueues() {
					s.inj.Clog(saltedQueue{q, fmt.Sprintf("%s@shard%d", q.Name(), i)})
				}
			}
		}
		if cfg.Faults.ClogQueue > 0 {
			for _, d := range s.chans {
				s.inj.Clog(d.Resp)
			}
		}
		if cfg.Faults.FlipBit > 0 {
			k.Observe(s.inj)
		}
	}

	s.tenants = expandTenants(cfg)
	for i := range s.tenants {
		if t := &s.tenants[i]; t.slo > 0 {
			s.sloAny = true
			s.sloGoverned[t.prio] = true
		}
	}
	return s, nil
}

// expandTenants flattens the groups into per-tenant state.
func expandTenants(cfg Config) []tenantState {
	var out []tenantState
	for gi, g := range cfg.Tenants {
		bucketRate := cfg.BucketRate
		if bucketRate == 0 {
			bucketRate = g.Rate * 1.25
		}
		for i := 0; i < g.Count; i++ {
			ti := len(out)
			t := tenantState{
				group: gi, prio: g.Priority, rate: g.Rate, skew: g.Skew,
				burstLen: g.BurstLen, burstOn: g.BurstOn,
				tokens: cfg.BucketBurst, bucketRate: bucketRate,
				slo: uint64(g.SLO), sloFactor: 1,
			}
			if g.BurstLen > 0 {
				t.phase = mix64(cfg.Seed^uint64(ti)*0x9e3779b97f4a7c15^streamPhase) % uint64(g.BurstLen)
			}
			out = append(out, t)
		}
	}
	return out
}

// valueOf is the seeded content of array[key], the oracle every OK
// response is checked against.
func (s *Service) valueOf(key uint64) uint64 {
	return mix64(key*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03)
}

func (s *Service) shardOf(key uint64) int {
	return int(mix64(key+0x2545f4914f6cdd1d) % uint64(len(s.shards)))
}

// effRate is the tenant's offered arrival probability this cycle: the
// base rate, concentrated into the on-phase when bursting (the average
// over a period stays Rate).
func (t *tenantState) effRate(c sim.Cycle) float64 {
	if t.burstLen <= 0 {
		return t.rate
	}
	on := uint64(float64(t.burstLen) * t.burstOn)
	if on == 0 {
		on = 1
	}
	if (uint64(c)+t.phase)%uint64(t.burstLen) < on {
		return t.rate * float64(t.burstLen) / float64(on)
	}
	return 0
}

// Tick implements sim.Component: the whole service brain runs serially
// here, once per cycle — responses, breaker maintenance, arrivals +
// admission, forwarding under backpressure, retries, timeouts, and the
// conservation audit.
func (s *Service) Tick(c sim.Cycle) {
	s.drainResponses(c)
	s.govern(uint64(c))
	s.maintainBreakers(c)
	s.generate(c)
	s.forward(c)
	s.fireRetries(c)
	s.scanTimeouts(c)
	s.audit(c)
}

func (s *Service) drainResponses(c sim.Cycle) {
	for _, sh := range s.shards {
		for {
			r, ok := sh.cache.Ctrl.RespQ.Pop()
			if !ok {
				break
			}
			st := s.reqs[r.ID>>attemptBits]
			if st == nil {
				continue // late response of an attempt already resolved/failed
			}
			s.resolve(c, st, sh, r)
		}
	}
}

func (s *Service) resolve(c sim.Cycle, st *reqState, sh *shardState, r ctrl.MetaResp) {
	t := &s.tenants[st.tenant]
	if r.Status == program.StatusOK {
		if want, present := s.Cfg.Expect(st.key); !present || r.Value != want {
			s.fatalf("cycle %d: shard %d tenant %d key %d answered %#x, oracle says (%#x, present=%v): shared-state corruption",
				c, sh.idx, st.tenant, st.key, r.Value, want, present)
		}
		lat := uint64(c - st.gen)
		t.completed++
		t.lat.Add(lat)
		t.latSum += lat
		if lat > t.latMax {
			t.latMax = lat
		}
		if t.slo > 0 {
			t.epochLat.Add(lat)
			t.epochN++
			if lat > t.epochMax {
				t.epochMax = lat
			}
			s.recordSLO(t, lat <= t.slo)
		}
		s.completed++
		if st.probe {
			sh.br.probeSuccess()
		}
	} else if _, present := s.Cfg.Expect(st.key); present {
		// NotFound for a key the oracle holds: the walker was quiesced by
		// a trap mid-flight. Permanent in the FailureKind taxonomy
		// (FailTrap) — deterministic, so no retry.
		t.failedTrap++
		s.recordSLO(t, false)
		s.failed++
		if st.probe {
			sh.br.probeFail(c)
		}
	} else {
		// A genuine miss is a served answer.
		t.notFound++
		t.completed++
		s.completed++
		if st.probe {
			sh.br.probeSuccess()
		}
	}
	delete(s.reqs, st.id)
	s.pending--
}

func (s *Service) maintainBreakers(c sim.Cycle) {
	for _, sh := range s.shards {
		if tr := sh.cache.Ctrl.Stats().Traps; tr != sh.lastTraps {
			sh.br.recordTrap(int(tr-sh.lastTraps), c)
			sh.lastTraps = tr
		}
		ct := sh.cache.Ctrl
		if sh.br.maintain(c, ct.Idle) {
			// Drain complete: discard the latched trap so capture re-arms
			// for the half-open probes.
			ct.ClearTrap()
		}
	}
}

func (s *Service) generate(c sim.Cycle) {
	if int(c) >= s.Cfg.Duration {
		return
	}
	for ti := range s.tenants {
		t := &s.tenants[ti]
		// Token refill is unconditional — capacity contracted, not
		// offered — but scaled by the SLO governor's admission factor:
		// a tenant over its latency budget refills slower until it
		// recovers.
		if t.tokens += t.bucketRate * t.sloFactor; t.tokens > s.Cfg.BucketBurst {
			t.tokens = s.Cfg.BucketBurst
		}
		p := t.effRate(c) * s.Cfg.Overload
		if p <= 0 {
			continue
		}
		if p > 1 {
			p = 1
		}
		if roll(s.Cfg.Seed, streamArrival, uint64(c), uint64(ti)) >= p {
			continue
		}
		key := zipfKey(roll(s.Cfg.Seed, streamKey, uint64(c), uint64(ti)), s.Cfg.Keys, t.skew)
		s.accept(c, ti, key)
	}
}

// accept runs one arrival through admission control and, if admitted,
// books it into the target shard's ingress queue.
func (s *Service) accept(c sim.Cycle, ti int, key uint64) {
	t := &s.tenants[ti]
	t.generated++
	s.accepted++
	shard := s.shardOf(key)
	sh := s.shards[shard]

	probe := false
	if err := func() *OverloadError {
		ok, pr := sh.br.admit()
		if !ok {
			return &OverloadError{Tenant: ti, Shard: shard, Reason: ShedBreaker}
		}
		probe = pr
		if t.tokens < 1 {
			// An empty bucket under a throttled factor is the governor's
			// doing: the tenant is being shed to protect its latency
			// budget, not because it exceeded its contracted rate.
			if t.slo > 0 && t.sloFactor < 1 {
				return &OverloadError{Tenant: ti, Shard: shard, Reason: ShedSLO}
			}
			return &OverloadError{Tenant: ti, Shard: shard, Reason: ShedRate}
		}
		// Priority-scaled depth threshold (shrunk further by the SLO
		// factor): lower priorities shed first as the queue grows.
		if sh.ingress.Len()+sh.ingress.StagedLen() >= t.depthLimit(s.Cfg.IngressDepth) || !sh.ingress.CanPush() {
			return &OverloadError{Tenant: ti, Shard: shard, Reason: ShedQueue}
		}
		return nil
	}(); err != nil {
		switch err.Reason {
		case ShedBreaker:
			t.shedBreaker++
		case ShedRate:
			t.shedRate++
		case ShedQueue:
			t.shedQueue++
		case ShedSLO:
			t.shedSLO++
		}
		s.shed++
		return
	}

	t.tokens--
	id := s.nextID
	s.nextID++
	st := &reqState{
		id: id, tenant: int32(ti), shard: int32(shard), probe: probe,
		key: key, gen: c, deadline: c + sim.Cycle(s.Cfg.Deadline),
	}
	s.reqs[id] = st
	s.pending++
	sh.ingress.MustPush(id) // admission just verified CanPush
}

func (s *Service) forward(c sim.Cycle) {
	for _, sh := range s.shards {
		if !sh.br.allowForward() {
			// Open breaker: the shard drains. Queued requests wait for
			// recovery, but expired heads must still fail (liveness).
			for {
				id, ok := sh.ingress.Peek()
				if !ok {
					break
				}
				st := s.reqs[id]
				if st == nil {
					sh.ingress.Pop()
					continue
				}
				if c <= st.deadline {
					break
				}
				sh.ingress.Pop()
				s.fail(c, st, check.FailStall)
			}
			continue
		}
		for n := 0; n < s.Cfg.ForwardPer; {
			id, ok := sh.ingress.Peek()
			if !ok {
				break
			}
			st := s.reqs[id]
			if st == nil {
				sh.ingress.Pop()
				continue
			}
			if c > st.deadline {
				sh.ingress.Pop()
				s.fail(c, st, check.FailStall)
				continue
			}
			if !sh.cache.Ctrl.ReqQ.CanPush() {
				sh.bpCycles++ // explicit backpressure: stop feeding this cycle
				break
			}
			sh.ingress.Pop()
			sh.cache.Ctrl.ReqQ.MustPush(ctrl.MetaReq{
				ID:  id<<attemptBits | uint64(st.attempt),
				Op:  ctrl.MetaLoad,
				Key: metatag.Key{st.key, 0}, Issued: c,
			})
			sh.inflight = append(sh.inflight, inflightRec{id: id, attempt: st.attempt, at: c})
			sh.forwarded++
			n++
		}
	}
}

func (s *Service) fireRetries(c sim.Cycle) {
	for len(s.retries) > 0 && s.retries.peek().due <= c {
		e := heap.Pop(&s.retries).(retryEntry)
		st := s.reqs[e.id]
		if st == nil || st.attempt != e.attempt {
			continue // resolved (or superseded) while waiting
		}
		if c > st.deadline {
			s.fail(c, st, check.FailStall)
			continue
		}
		sh := s.shards[st.shard]
		if !sh.ingress.CanPush() {
			// Physically no room: hold the retry, bounded by the deadline.
			heap.Push(&s.retries, retryEntry{due: c + sim.Cycle(s.Cfg.Backoff), id: e.id, attempt: e.attempt})
			continue
		}
		s.tenants[st.tenant].retries++
		s.reissues++
		sh.ingress.MustPush(e.id)
	}
}

func (s *Service) scanTimeouts(c sim.Cycle) {
	for _, sh := range s.shards {
		for sh.head < len(sh.inflight) {
			rec := sh.inflight[sh.head]
			if rec.at+sim.Cycle(s.Cfg.Timeout) > c {
				break
			}
			sh.head++
			st := s.reqs[rec.id]
			if st == nil || st.attempt != rec.attempt {
				continue // resolved, or already on a newer attempt
			}
			sh.timeouts++
			sh.br.recordTimeout(c)
			if st.probe {
				sh.br.probeFail(c)
			}
			// Timeouts are FailStall in the taxonomy: transient, so retry
			// — within the attempt budget and the request deadline.
			kind := check.FailStall
			if transientKind(kind) && int(st.attempt) < s.Cfg.Retries {
				st.attempt++
				due := c + sim.Cycle(s.Cfg.Backoff)<<(st.attempt-1)
				if due <= st.deadline {
					heap.Push(&s.retries, retryEntry{due: due, id: rec.id, attempt: st.attempt})
					continue
				}
			}
			s.fail(c, st, kind)
		}
		// Compact the lazily-scanned prefix so a long run stays O(live).
		if sh.head > 4096 && sh.head*2 > len(sh.inflight) {
			sh.inflight = append(sh.inflight[:0:0], sh.inflight[sh.head:]...)
			sh.head = 0
		}
	}
}

// fail retires a request unsuccessfully: deadline/retry-budget exhaustion
// (FailStall → failedDeadline) or a permanent fault.
func (s *Service) fail(c sim.Cycle, st *reqState, kind check.FailureKind) {
	t := &s.tenants[st.tenant]
	if kind == check.FailTrap {
		t.failedTrap++
	} else {
		t.failedDeadline++
	}
	s.recordSLO(t, false)
	s.failed++
	if st.probe {
		s.shards[st.shard].br.probeFail(c)
	}
	delete(s.reqs, st.id)
	s.pending--
}

// audit is the in-loop conservation invariant: accepted = completed +
// shed + failed + pending, exactly, every cycle — and the pending count
// must equal the live request table.
func (s *Service) audit(c sim.Cycle) {
	if s.fatal != nil {
		return
	}
	if s.accepted != s.completed+s.shed+s.failed+s.pending {
		s.fatalf("cycle %d: conservation violated: accepted %d != completed %d + shed %d + failed %d + pending %d",
			c, s.accepted, s.completed, s.shed, s.failed, s.pending)
		return
	}
	if s.pending != uint64(len(s.reqs)) {
		s.fatalf("cycle %d: pending ledger %d != live requests %d", c, s.pending, len(s.reqs))
	}
}

func (s *Service) fatalf(format string, args ...any) {
	if s.fatal == nil {
		s.fatal = fmt.Errorf("serve: "+format, args...)
	}
}

// DiagnoseName implements check.Diagnoser.
func (s *Service) DiagnoseName() string { return "serve" }

// Diagnose implements check.Diagnoser: the service ledger and every
// shard's breaker state, for StallReports.
func (s *Service) Diagnose() []string {
	out := []string{fmt.Sprintf("accepted=%d completed=%d shed=%d failed=%d pending=%d retries=%d",
		s.accepted, s.completed, s.shed, s.failed, s.pending, s.reissues)}
	for _, sh := range s.shards {
		out = append(out, fmt.Sprintf("shard%d: breaker=%s trips=%d ingress=%d inflight=%d timeouts=%d",
			sh.idx, sh.br.state, sh.br.trips, sh.ingress.Len(), len(sh.inflight)-sh.head, sh.timeouts))
	}
	return out
}

// Degraded returns the typed *DegradedError for the first channel still
// quarantined or probing, or nil when every channel is healthy. It
// unwraps to ErrDegraded. Degradation is survivable by design, so it is
// surfaced here (and in the report) rather than failing Run.
func (s *Service) Degraded() error {
	if e := s.mux.degraded(); e != nil {
		return e
	}
	return nil
}

// done: the arrival window has closed and every accepted request has
// been resolved (completed, shed, or failed).
func (s *Service) done() bool {
	return int(s.K.Cycle()) >= s.Cfg.Duration && s.pending == 0
}

// Run drives the service to completion under supervision and returns the
// report. On a fatal service failure — stall, invariant violation
// (including shared-state corruption caught by the oracle), queue
// overflow, or budget exhaustion — the error is a *check.Failure
// carrying the full StallReport.
func (s *Service) Run() (*Report, error) {
	for {
		if s.fatal != nil {
			return nil, s.h.Report(check.FailInvariant, s.fatal.Error()).Failure()
		}
		if err := s.h.Err(); err != nil {
			return nil, s.h.Report(check.FailInvariant, fmt.Sprintf("invariant violated: %v", err)).Failure()
		}
		if s.done() {
			return s.report(), nil
		}
		if int(s.K.Cycle()) >= s.Cfg.MaxCycles {
			return nil, s.h.Report(check.FailBudget,
				fmt.Sprintf("cycle budget (%d) exhausted with %d requests pending", s.Cfg.MaxCycles, s.pending)).Failure()
		}
		if err := s.h.Step(); err != nil {
			return nil, s.h.Report(check.FailOverflow, fmt.Sprintf("queue overflow: %v", err)).Failure()
		}
		if s.h.Stalled(s.K.Cycle()) {
			return nil, s.h.Report(check.FailStall,
				fmt.Sprintf("no forward progress for %d cycles", s.Cfg.Watchdog)).Failure()
		}
	}
}
