package serve

import (
	"encoding/json"
	"errors"
	"testing"

	"xcache/internal/check"
)

// run builds and runs a service, failing the test on any error.
func run(t *testing.T, cfg Config) *Report {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

// checkLedger asserts exact conservation on a finished report:
// generated = completed + shed + failed, globally and per tenant.
func checkLedger(t *testing.T, r *Report) {
	t.Helper()
	tot := r.Totals
	if tot.Generated != tot.Completed+tot.Shed+tot.Failed {
		t.Errorf("totals not conserved: generated %d != completed %d + shed %d + failed %d",
			tot.Generated, tot.Completed, tot.Shed, tot.Failed)
	}
	var gen, comp, shed, failed uint64
	for _, tr := range r.Tenants {
		gen += tr.Generated
		comp += tr.Completed
		shed += tr.ShedRate + tr.ShedQueue + tr.ShedBreaker + tr.ShedSLO
		failed += tr.FailedDeadline + tr.FailedTrap
		if tr.Generated != tr.Completed+tr.ShedRate+tr.ShedQueue+tr.ShedBreaker+tr.ShedSLO+tr.FailedDeadline+tr.FailedTrap {
			t.Errorf("tenant %d not conserved", tr.Tenant)
		}
	}
	if gen != tot.Generated || comp != tot.Completed || shed != tot.Shed || failed != tot.Failed {
		t.Errorf("tenant sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			gen, comp, shed, failed, tot.Generated, tot.Completed, tot.Shed, tot.Failed)
	}
}

func TestSmoke(t *testing.T) {
	r := run(t, Config{
		Shards:   2,
		Tenants:  []TenantGroup{{Count: 4, Rate: 0.05}},
		Keys:     1 << 12,
		Duration: 20_000,
		Seed:     1,
	})
	checkLedger(t, r)
	if r.Totals.Generated == 0 {
		t.Fatal("no requests generated")
	}
	if r.Totals.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// An unloaded, fault-free run should complete nearly everything.
	if frac := float64(r.Totals.Completed) / float64(r.Totals.Generated); frac < 0.95 {
		t.Errorf("only %.1f%% completed in an unloaded run", 100*frac)
	}
	if r.Latency.P99 == 0 {
		t.Error("p99 latency is zero")
	}
}

// TestDeterminism: the report is byte-identical across reruns and across
// serial vs parallel shard ticking.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Shards:   4,
		Tenants:  []TenantGroup{{Count: 6, Rate: 0.04, Skew: 0.9}, {Count: 2, Priority: 4, Rate: 0.02}},
		Keys:     1 << 12,
		Duration: 15_000,
		Seed:     7,
		Faults:   check.FaultConfig{DropResp: 0.01, ClogQueue: 0.002},
	}
	marshal := func(workers int) []byte {
		c := cfg
		c.TickWorkers = workers
		r := run(t, c)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	serial := marshal(1)
	again := marshal(1)
	par := marshal(8)
	if string(serial) != string(again) {
		t.Error("same-seed reruns differ")
	}
	if string(serial) != string(par) {
		t.Error("serial vs parallel (8 workers) reports differ")
	}
}

// TestOverloadSheds: at 2x overload with rate-limited buckets the service
// sheds rather than failing, and keeps completing what it admits.
func TestOverloadSheds(t *testing.T) {
	r := run(t, Config{
		Shards:   2,
		Tenants:  []TenantGroup{{Count: 8, Rate: 0.05}},
		Keys:     1 << 12,
		Duration: 20_000,
		Seed:     3,
		Overload: 2.0,
	})
	checkLedger(t, r)
	if r.Totals.Shed == 0 {
		t.Fatal("2x overload shed nothing")
	}
	// Admitted work still completes: failures must stay rare.
	if r.Totals.Failed*100 > r.Totals.Generated {
		t.Errorf("failed %d of %d generated (>1%%) under overload", r.Totals.Failed, r.Totals.Generated)
	}
	if r.Totals.ShedRate < 0.1 {
		t.Errorf("shed rate %.3f unexpectedly low at 2x overload", r.Totals.ShedRate)
	}
}

// TestPriorityShedding: under queue pressure, low-priority tenants shed
// strictly more than high-priority ones.
func TestPriorityShedding(t *testing.T) {
	r := run(t, Config{
		Shards: 1,
		Tenants: []TenantGroup{
			{Count: 4, Priority: 0, Rate: 0.2},
			{Count: 4, Priority: 6, Rate: 0.2},
		},
		Keys:     1 << 10,
		Duration: 20_000,
		Seed:     5,
		Overload: 3.0,
		// Wide-open buckets so the ingress queue is the contended resource.
		BucketRate:  1,
		BucketBurst: 64,
	})
	checkLedger(t, r)
	var lowShed, highShed, lowGen, highGen uint64
	for _, tr := range r.Tenants {
		if tr.Priority == 0 {
			lowShed += tr.ShedQueue
			lowGen += tr.Generated
		} else {
			highShed += tr.ShedQueue
			highGen += tr.Generated
		}
	}
	if lowGen == 0 || highGen == 0 {
		t.Fatal("degenerate generation")
	}
	lowFrac := float64(lowShed) / float64(lowGen)
	highFrac := float64(highShed) / float64(highGen)
	if lowFrac <= highFrac {
		t.Errorf("priority inversion: low-prio queue-shed %.3f <= high-prio %.3f", lowFrac, highFrac)
	}
}

// TestBackpressure: a tiny ingress queue in front of a slow shard forces
// explicit backpressure cycles and queue sheds, not overflows or stalls.
func TestBackpressure(t *testing.T) {
	r := run(t, Config{
		Shards:       1,
		Tenants:      []TenantGroup{{Count: 8, Rate: 0.3}},
		Keys:         1 << 14,
		Duration:     10_000,
		Seed:         11,
		IngressDepth: 8,
		ForwardPer:   2,
		BucketRate:   1,
		BucketBurst:  64,
	})
	checkLedger(t, r)
	sh := r.Shards[0]
	if sh.BPCycles == 0 && r.Totals.Shed == 0 {
		t.Error("expected backpressure or shedding with a depth-8 ingress at high load")
	}
}

// TestOverloadErrorType: the typed error wraps ErrOverload and carries
// the shed context.
func TestOverloadErrorType(t *testing.T) {
	err := error(&OverloadError{Tenant: 3, Shard: 1, Reason: ShedQueue})
	if !errors.Is(err, ErrOverload) {
		t.Fatal("OverloadError does not unwrap to ErrOverload")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Tenant != 3 || oe.Shard != 1 || oe.Reason != ShedQueue {
		t.Fatalf("errors.As lost fields: %+v", oe)
	}
	want := "serve: overload: tenant 3 shed at shard 1 (queue)"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// TestRetryRecoversDrops: with DRAM response drops, fill-timeout
// reissue plus service-level retries keep completion high and no request
// is lost from the ledger.
func TestRetryRecoversDrops(t *testing.T) {
	r := run(t, Config{
		Shards:   2,
		Tenants:  []TenantGroup{{Count: 4, Rate: 0.03}},
		Keys:     1 << 12,
		Duration: 20_000,
		Seed:     13,
		Faults:   check.FaultConfig{DropResp: 0.02},
	})
	checkLedger(t, r)
	var fillRetries uint64
	for _, sh := range r.Shards {
		fillRetries += sh.FillRetries
	}
	if r.Faults == nil || r.Faults.Drops == 0 {
		t.Fatal("no drops injected")
	}
	if fillRetries == 0 {
		t.Error("drops injected but no fill retries recorded")
	}
	if frac := float64(r.Totals.Completed) / float64(r.Totals.Generated); frac < 0.9 {
		t.Errorf("completion %.3f under 2%% drop rate — retries not recovering", frac)
	}
}
