package serve

import "xcache/internal/stats"

// The SLO governor: per-tenant p99 latency budgets driving an AIMD
// feedback controller over admission. Replaces "shed a fixed queue
// fraction" with "shed whatever it takes to hold the latency target".
//
// Control law, evaluated once per epoch for every tenant with an SLO:
//
//   - violation (observed p99 > target): multiplicative decrease —
//     admission factor ×= sloDecrease, floored at sloFloor. Hard
//     braking, because queueing latency compounds while over target.
//   - healthy (observed p99 ≤ sloHealthyBand × target) for
//     sloHealthyStreak consecutive epochs: additive increase — factor
//     += sloIncrease, capped at 1. Slow, monotone recovery.
//   - in between (the hysteresis band): hold. The dead zone between
//     "brake" and "accelerate" is what keeps the controller from
//     oscillating around the target.
//
// The factor scales both the token-bucket refill and the priority-depth
// limit, so a throttled tenant is shed at admission (reported as
// ShedSLO) rather than queued into a latency it cannot meet. Epochs
// with too few samples count as healthy: a fully-throttled tenant emits
// almost no traffic, and without this rule its factor could never
// climb back.
const (
	sloEpochDefault  = 1024 // governor evaluation period, cycles
	sloMinSamples    = 8    // completions needed for a meaningful p99
	sloFloor         = 1.0 / 64
	sloDecrease      = 0.7
	sloIncrease      = 0.05
	sloHealthyBand   = 0.8 // fraction of target below which an epoch is "healthy"
	sloHealthyStreak = 2   // healthy epochs required before each increase
)

// recordSLO books one resolved governed request into the tenant's and
// the fleet's SLO ledgers. met is true when the request completed
// within its tenant's budget; failures (deadline, trap) are recorded as
// misses — an unserved request did not meet its SLO.
func (s *Service) recordSLO(t *tenantState, met bool) {
	if t.slo == 0 {
		return
	}
	t.sloMeasured++
	t.epochTotal++
	if met {
		t.sloMet++
		t.epochMet++
	}
	s.sloEpochTotal[t.prio]++
	if met {
		s.sloEpochMet[t.prio]++
	}
}

// govern runs the SLO feedback controller. Called every cycle from the
// serve tick; acts only on epoch boundaries.
func (s *Service) govern(c uint64) {
	if !s.sloAny || c == 0 || c%uint64(s.Cfg.SLOEpoch) != 0 {
		return
	}

	// Flush the per-priority attainment series (-1 marks an epoch with
	// no governed traffic at that priority, so plots can gap it).
	for p := 0; p < len(s.sloSeries); p++ {
		if !s.sloGoverned[p] {
			continue
		}
		att := -1.0
		if s.sloEpochTotal[p] > 0 {
			att = float64(s.sloEpochMet[p]) / float64(s.sloEpochTotal[p])
		}
		s.sloSeries[p] = append(s.sloSeries[p], att)
		s.sloEpochMet[p], s.sloEpochTotal[p] = 0, 0
	}

	// Per-tenant AIMD step.
	for ti := range s.tenants {
		t := &s.tenants[ti]
		if t.slo == 0 {
			continue
		}
		if t.epochN < sloMinSamples {
			// Idle or fully throttled: count as healthy so recovery is
			// reachable from the floor.
			s.sloRelax(t)
		} else {
			p99 := t.epochLat.Percentile(0.99)
			if p99 > t.epochMax {
				p99 = t.epochMax // bucket-top bound clamped to observed max
			}
			switch {
			case float64(p99) > float64(t.slo):
				t.sloFactor *= sloDecrease
				if t.sloFactor < sloFloor {
					t.sloFactor = sloFloor
				}
				t.healthyStreak = 0
				t.sloThrottles++
			case float64(p99) <= sloHealthyBand*float64(t.slo):
				s.sloRelax(t)
			default:
				// Hysteresis band: hold the factor, restart the streak.
				t.healthyStreak = 0
			}
		}
		t.epochLat = stats.Histogram{}
		t.epochN, t.epochMax, t.epochMet, t.epochTotal = 0, 0, 0, 0
	}
}

// sloRelax is the additive-increase half of the controller: one healthy
// epoch observed; raise the factor only after a full streak of them.
func (s *Service) sloRelax(t *tenantState) {
	t.healthyStreak++
	if t.healthyStreak < sloHealthyStreak || t.sloFactor >= 1 {
		return
	}
	t.sloFactor += sloIncrease
	if t.sloFactor > 1 {
		t.sloFactor = 1
	}
}

// depthLimit is the tenant's priority-scaled ingress depth threshold,
// shrunk by the SLO factor: priority p (0 lowest, 7 highest) is admitted
// only while the queue is below factor×(p+1)/8 of its depth, so the
// lowest priorities shed first as it grows and a throttled tenant sheds
// earlier still. Never below 1 — an admitted tenant can always make
// progress into an empty queue.
func (t *tenantState) depthLimit(ingressDepth int) int {
	limit := int(float64((t.prio+1)*ingressDepth) / 8 * t.sloFactor)
	if limit < 1 {
		limit = 1
	}
	return limit
}
