package serve

import (
	"testing"
)

// sloConfig: one governed tenant group under enough load that the
// ungoverned p99 sits well above the tight budget.
func sloConfig(slo int) Config {
	return Config{
		Shards:   2,
		Tenants:  []TenantGroup{{Count: 8, Rate: 0.05, SLO: slo}},
		Keys:     1 << 12,
		Duration: 40_000,
		Seed:     21,
		Overload: 1.5,
	}
}

// TestSLOGovernorThrottles: a tight p99 budget under overload drives the
// AIMD factor below 1, sheds via ShedSLO, and the governed p99 does not
// exceed the ungoverned p99 for the same workload.
func TestSLOGovernorThrottles(t *testing.T) {
	governed := run(t, sloConfig(512)) // tight: well under loaded p99
	checkLedger(t, governed)

	if governed.SLO == nil {
		t.Fatal("no SLO report for governed run")
	}
	var throttles, shedSLO uint64
	factorBelow := false
	for _, tr := range governed.Tenants {
		if tr.SLO == nil {
			t.Fatalf("tenant %d governed but has no SLO report", tr.Tenant)
		}
		throttles += tr.SLO.Throttles
		shedSLO += tr.ShedSLO
		if tr.SLO.Factor < 1 {
			factorBelow = true
		}
		if tr.SLO.Target != 512 {
			t.Errorf("tenant %d SLO target %d, want 512", tr.Tenant, tr.SLO.Target)
		}
	}
	if throttles == 0 {
		t.Error("tight SLO under overload never throttled")
	}
	if shedSLO == 0 {
		t.Error("throttled tenants never shed via ShedSLO")
	}
	if !factorBelow {
		t.Error("no tenant ended with an admission factor below 1")
	}

	// Throttling admission must not make latency worse than leaving the
	// same workload ungoverned.
	ungovCfg := sloConfig(0)
	ungoverned := run(t, ungovCfg)
	if governed.Latency.P99 > ungoverned.Latency.P99 {
		t.Errorf("governed p99 %d > ungoverned p99 %d — throttling made latency worse",
			governed.Latency.P99, ungoverned.Latency.P99)
	}
	if ungoverned.SLO != nil {
		t.Error("ungoverned run produced an SLO report")
	}
}

// TestSLOSlackBudget: a budget far above the loaded p99 never throttles:
// factor stays 1, nothing sheds on SLO grounds, attainment is ~perfect.
func TestSLOSlackBudget(t *testing.T) {
	r := run(t, sloConfig(1<<20))
	checkLedger(t, r)
	if r.SLO == nil {
		t.Fatal("no SLO report")
	}
	for _, tr := range r.Tenants {
		if tr.SLO == nil {
			continue
		}
		if tr.SLO.Factor != 1 {
			t.Errorf("tenant %d factor %.3f with a slack budget, want 1", tr.Tenant, tr.SLO.Factor)
		}
		if tr.SLO.Throttles != 0 {
			t.Errorf("tenant %d throttled %d times with a slack budget", tr.Tenant, tr.SLO.Throttles)
		}
		if tr.ShedSLO != 0 {
			t.Errorf("tenant %d shed %d on SLO with a slack budget", tr.Tenant, tr.ShedSLO)
		}
	}
	for _, a := range r.SLO.Attainment {
		if a.Measured > 0 && a.Attainment < 0.99 {
			t.Errorf("priority %d attainment %.3f with a slack budget", a.Priority, a.Attainment)
		}
	}
}

// TestSLOGovernorRecovers: after sustained throttling, removing the
// pressure (arrivals stop at Duration) lets epochs with low samples count
// as healthy, so the factor climbs back toward 1 rather than wedging at
// the floor. Verified indirectly: the ending factor must be above the
// multiplicative floor after the drain epochs.
func TestSLOGovernorRecovers(t *testing.T) {
	cfg := sloConfig(512)
	cfg.MaxCycles = 8 * cfg.Duration // long drain: many post-traffic epochs
	r := run(t, cfg)
	checkLedger(t, r)
	for _, tr := range r.Tenants {
		if tr.SLO == nil {
			continue
		}
		if tr.SLO.Factor <= sloFloor {
			t.Errorf("tenant %d factor %.4f still at the floor after drain — hysteresis wedged",
				tr.Tenant, tr.SLO.Factor)
		}
	}
}
