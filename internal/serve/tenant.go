package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// TenantGroup describes a homogeneous group of synthetic open-loop
// tenants: each tenant independently offers requests at Rate per cycle
// (optionally modulated by an on/off burst pattern) over a zipf-skewed
// slice of the shared key space.
type TenantGroup struct {
	Count    int     // tenants in the group (1 .. 1<<20)
	Priority int     // 0 (lowest) .. 7 (highest); lowest sheds first
	Rate     float64 // per-tenant arrival probability per cycle, in (0, 1]
	Skew     float64 // zipf key-popularity exponent, in [0, 8] (0 = uniform)
	BurstLen int     // on/off burst period in cycles (0 = steady arrivals)
	BurstOn  float64 // fraction of the period spent bursting, in (0, 1]
	// SLO is the group's p99 latency budget in cycles (0 = ungoverned).
	// Tenants with an SLO are governed by the adaptive admission
	// controller: sustained p99 above the budget throttles the tenant's
	// admitted rate (counted as ShedSLO) until latency recovers.
	SLO int
}

// Spec-grammar limits; the fuzzer leans on these to keep parsed configs
// inside what the service can actually simulate.
const (
	maxGroupCount = 1 << 20
	maxPriority   = 7
	maxSkew       = 8
	maxBurstLen   = 1 << 20
	maxSLO        = 1 << 26
)

func (g TenantGroup) validate() error {
	if g.Count < 1 || g.Count > maxGroupCount {
		return fmt.Errorf("count %d outside [1, %d]", g.Count, maxGroupCount)
	}
	if g.Priority < 0 || g.Priority > maxPriority {
		return fmt.Errorf("priority %d outside [0, %d]", g.Priority, maxPriority)
	}
	if !(g.Rate > 0 && g.Rate <= 1) { // rejects NaN too
		return fmt.Errorf("rate %v outside (0, 1]", g.Rate)
	}
	if !(g.Skew >= 0 && g.Skew <= maxSkew) {
		return fmt.Errorf("skew %v outside [0, %d]", g.Skew, maxSkew)
	}
	if g.BurstLen != 0 {
		if g.BurstLen < 2 || g.BurstLen > maxBurstLen {
			return fmt.Errorf("burst period %d outside [2, %d]", g.BurstLen, maxBurstLen)
		}
		if !(g.BurstOn > 0 && g.BurstOn <= 1) {
			return fmt.Errorf("burst duty %v outside (0, 1]", g.BurstOn)
		}
	} else if g.BurstOn != 0 {
		return fmt.Errorf("burst duty %v without a burst period", g.BurstOn)
	}
	if g.SLO < 0 || g.SLO > maxSLO {
		return fmt.Errorf("slo %d outside [0, %d]", g.SLO, maxSLO)
	}
	return nil
}

// ParseTenantSpec parses the tenant-stream mini-language used by
// xcache-serve's -tenants flag. Groups are joined by ';':
//
//	group  := COUNT [ '@' PRIORITY ] [ ':' kv ( ',' kv )* ]
//	kv     := 'rate=' FLOAT | 'skew=' FLOAT | 'burst=' LEN '/' DUTY
//	        | 'slo=' P99CYCLES
//
// e.g. "8@0:rate=0.05;56@2:rate=0.01,skew=1.2,burst=2000/0.25" — eight
// priority-0 tenants at 5% load each plus 56 background tenants with a
// skewed, bursty pattern — or "4@7:rate=0.02,slo=4096" for governed
// tenants with a 4096-cycle p99 budget. Defaults: priority 0, rate
// 0.01, skew 0, no bursting, no SLO. FormatTenantSpec is the canonical
// inverse.
func ParseTenantSpec(s string) ([]TenantGroup, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("serve: empty tenant spec")
	}
	var groups []TenantGroup
	for gi, part := range strings.Split(s, ";") {
		g, err := parseGroup(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("serve: tenant group %d %q: %w", gi, part, err)
		}
		groups = append(groups, g)
	}
	return groups, nil
}

func parseGroup(s string) (TenantGroup, error) {
	g := TenantGroup{Priority: 0, Rate: 0.01}
	head := s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		head = s[:i]
		for _, kv := range strings.Split(s[i+1:], ",") {
			if err := parseKV(&g, strings.TrimSpace(kv)); err != nil {
				return g, err
			}
		}
	}
	if i := strings.IndexByte(head, '@'); i >= 0 {
		p, err := strconv.Atoi(strings.TrimSpace(head[i+1:]))
		if err != nil {
			return g, fmt.Errorf("bad priority %q: %v", head[i+1:], err)
		}
		g.Priority = p
		head = head[:i]
	}
	n, err := strconv.Atoi(strings.TrimSpace(head))
	if err != nil {
		return g, fmt.Errorf("bad count %q: %v", head, err)
	}
	g.Count = n
	if err := g.validate(); err != nil {
		return g, err
	}
	return g, nil
}

func parseKV(g *TenantGroup, kv string) error {
	key, val, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("bad key=value %q", kv)
	}
	switch key {
	case "rate":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %v", val, err)
		}
		g.Rate = f
	case "skew":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad skew %q: %v", val, err)
		}
		g.Skew = f
	case "burst":
		ls, ds, ok := strings.Cut(val, "/")
		if !ok {
			return fmt.Errorf("burst wants LEN/DUTY, got %q", val)
		}
		l, err := strconv.Atoi(ls)
		if err != nil {
			return fmt.Errorf("bad burst period %q: %v", ls, err)
		}
		d, err := strconv.ParseFloat(ds, 64)
		if err != nil {
			return fmt.Errorf("bad burst duty %q: %v", ds, err)
		}
		g.BurstLen, g.BurstOn = l, d
	case "slo":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad slo %q: %v", val, err)
		}
		g.SLO = n
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// FormatTenantSpec renders groups in the canonical spec syntax, the exact
// inverse of ParseTenantSpec for valid groups (the fuzzer pins the
// round-trip).
func FormatTenantSpec(groups []TenantGroup) string {
	var b strings.Builder
	for i, g := range groups {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d@%d:rate=%s,skew=%s", g.Count, g.Priority,
			strconv.FormatFloat(g.Rate, 'g', -1, 64),
			strconv.FormatFloat(g.Skew, 'g', -1, 64))
		if g.BurstLen != 0 {
			fmt.Fprintf(&b, ",burst=%d/%s", g.BurstLen,
				strconv.FormatFloat(g.BurstOn, 'g', -1, 64))
		}
		if g.SLO != 0 {
			fmt.Fprintf(&b, ",slo=%d", g.SLO)
		}
	}
	return b.String()
}

// ScaleTenants rescales a tenant mix to a new total tenant count,
// preserving the groups' proportions (largest-remainder rounding; groups
// rounded to zero are dropped).
// It is how the sweep mode reuses one mix across {1, 8, 64, 512}.
func ScaleTenants(groups []TenantGroup, total int) []TenantGroup {
	if total <= 0 || len(groups) == 0 {
		return nil
	}
	orig := 0
	for _, g := range groups {
		orig += g.Count
	}
	out := make([]TenantGroup, 0, len(groups))
	type frac struct {
		idx int
		rem float64
	}
	var fracs []frac
	assigned := 0
	for i, g := range groups {
		exact := float64(total) * float64(g.Count) / float64(orig)
		n := int(exact)
		fracs = append(fracs, frac{i, exact - float64(n)})
		g.Count = n
		assigned += n
		out = append(out, g)
	}
	// Hand the remainder out by largest fractional part, index as the
	// deterministic tie-break.
	for assigned < total {
		best := -1
		for fi, f := range fracs {
			if best < 0 || f.rem > fracs[best].rem ||
				(f.rem == fracs[best].rem && f.idx < fracs[best].idx) {
				best = fi
			}
		}
		out[fracs[best].idx].Count++
		fracs[best].rem = -1
		assigned++
		if best >= 0 && fracs[best].rem == -1 {
			// All remainders consumed but tenants still unassigned (total >
			// len(groups) surplus): round-robin the rest.
			allSpent := true
			for _, f := range fracs {
				if f.rem >= 0 {
					allSpent = false
					break
				}
			}
			if allSpent && assigned < total {
				for i := range fracs {
					fracs[i].rem = 0
				}
			}
		}
	}
	kept := out[:0]
	for _, g := range out {
		if g.Count > 0 {
			kept = append(kept, g)
		}
	}
	return kept
}
