package serve

import (
	"reflect"
	"testing"
)

func TestParseTenantSpec(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []TenantGroup
		err  bool
	}{
		{name: "count only", in: "8",
			want: []TenantGroup{{Count: 8, Rate: 0.01}}},
		{name: "count and priority", in: "4@3",
			want: []TenantGroup{{Count: 4, Priority: 3, Rate: 0.01}}},
		{name: "full group", in: "16@2:rate=0.05,skew=0.9,burst=200/0.25",
			want: []TenantGroup{{Count: 16, Priority: 2, Rate: 0.05, Skew: 0.9, BurstLen: 200, BurstOn: 0.25}}},
		{name: "two groups", in: "8:rate=0.02;2@7:rate=0.1",
			want: []TenantGroup{{Count: 8, Rate: 0.02}, {Count: 2, Priority: 7, Rate: 0.1}}},
		{name: "whitespace tolerated", in: " 8 @ 1 : rate=0.02 ",
			want: []TenantGroup{{Count: 8, Priority: 1, Rate: 0.02}}},
		{name: "empty", in: "", err: true},
		{name: "zero count", in: "0", err: true},
		{name: "negative count", in: "-3", err: true},
		{name: "priority too high", in: "4@8", err: true},
		{name: "bad rate", in: "4:rate=2", err: true},
		{name: "nan rate", in: "4:rate=NaN", err: true},
		{name: "bad skew", in: "4:skew=99", err: true},
		{name: "bad burst duty", in: "4:burst=100/1.5", err: true},
		{name: "unknown key", in: "4:color=red", err: true},
		{name: "trailing semicolon", in: "4;", err: true},
		{name: "huge count", in: "99999999", err: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ParseTenantSpec(c.in)
			if c.err {
				if err == nil {
					t.Fatalf("ParseTenantSpec(%q) = %+v, want error", c.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTenantSpec(%q): %v", c.in, err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("ParseTenantSpec(%q) = %+v, want %+v", c.in, got, c.want)
			}
		})
	}
}

// TestFormatParseRoundTrip: Format is a canonical inverse of Parse.
func TestFormatParseRoundTrip(t *testing.T) {
	groups := []TenantGroup{
		{Count: 8, Rate: 0.01},
		{Count: 4, Priority: 7, Rate: 0.125, Skew: 1.1},
		{Count: 100, Priority: 2, Rate: 0.002, BurstLen: 512, BurstOn: 0.5},
	}
	spec := FormatTenantSpec(groups)
	back, err := ParseTenantSpec(spec)
	if err != nil {
		t.Fatalf("reparse %q: %v", spec, err)
	}
	if !reflect.DeepEqual(groups, back) {
		t.Fatalf("round trip %q: %+v != %+v", spec, back, groups)
	}
}

func TestScaleTenants(t *testing.T) {
	groups := []TenantGroup{
		{Count: 3, Rate: 0.01},
		{Count: 1, Priority: 5, Rate: 0.05},
	}
	scaled := ScaleTenants(groups, 64)
	var total int
	for _, g := range scaled {
		total += g.Count
	}
	if total != 64 {
		t.Fatalf("scaled total %d, want 64", total)
	}
	// Proportions approximately preserved (3:1).
	if scaled[0].Count != 48 || scaled[1].Count != 16 {
		t.Errorf("scaled counts %d,%d; want 48,16", scaled[0].Count, scaled[1].Count)
	}
	// Non-count fields untouched.
	if scaled[1].Priority != 5 || scaled[1].Rate != 0.05 {
		t.Error("scaling corrupted group fields")
	}
	// Scaling to fewer tenants than groups keeps every group alive.
	tiny := ScaleTenants(groups, 1)
	total = 0
	for _, g := range tiny {
		total += g.Count
	}
	if total < 1 {
		t.Fatalf("scaled-to-1 total %d", total)
	}
}
