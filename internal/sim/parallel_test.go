package sim

import (
	"fmt"
	"testing"
)

// pipeWorker pops from its input queue, transforms, pushes to its output
// queue: the queue-isolated component shape Parallelize is contracted for.
type pipeWorker struct {
	in, out *Queue[uint64]
	sum     uint64
	ticks   uint64
}

func (w *pipeWorker) Tick(c Cycle) {
	w.ticks++
	for {
		v, ok := w.in.Pop()
		if !ok {
			return
		}
		w.sum += v
		w.out.MustPush(v*3 + uint64(c)&1)
	}
}

// feeder pushes a deterministic stream into every worker input.
type feeder struct {
	ins []*Queue[uint64]
	n   uint64
}

func (f *feeder) Tick(c Cycle) {
	for i, q := range f.ins {
		if q.CanPush() {
			f.n++
			q.MustPush(f.n*7 + uint64(i))
		}
	}
}

// runPipeline builds feeder -> N workers -> sinks, optionally grouped,
// runs it, and fingerprints the complete observable state.
func runPipeline(t *testing.T, workers, tickWorkers int, group bool) string {
	t.Helper()
	k := NewKernel()
	f := &feeder{}
	k.Add(f)
	var ws []*pipeWorker
	var members []Component
	sinks := make([]*Queue[uint64], workers)
	var drained []uint64
	for i := 0; i < workers; i++ {
		in := NewQueue[uint64](k, fmt.Sprintf("in%d", i), 4)
		out := NewQueue[uint64](k, fmt.Sprintf("out%d", i), 1024)
		w := &pipeWorker{in: in, out: out}
		k.Add(w)
		f.ins = append(f.ins, in)
		ws = append(ws, w)
		members = append(members, w)
		sinks[i] = out
	}
	if group {
		if err := k.Parallelize(members...); err != nil {
			t.Fatalf("Parallelize: %v", err)
		}
	}
	k.SetTickWorkers(tickWorkers)
	for i := 0; i < 200; i++ {
		k.Step()
	}
	fp := ""
	for i, w := range ws {
		fp += fmt.Sprintf("w%d:sum=%d,ticks=%d;", i, w.sum, w.ticks)
		for {
			v, ok := sinks[i].Pop()
			if !ok {
				break
			}
			drained = append(drained, v)
		}
		fp += fmt.Sprintf("out=%v;", drained)
		drained = drained[:0]
	}
	return fp
}

// TestParallelizeResultInvariant: grouping components and ticking them on
// any worker count yields byte-identical results to plain serial
// registration order.
func TestParallelizeResultInvariant(t *testing.T) {
	base := runPipeline(t, 8, 0, false)
	for _, tw := range []int{0, 1, 4, 16} {
		if got := runPipeline(t, 8, tw, true); got != base {
			t.Errorf("tickWorkers=%d diverged from ungrouped serial:\n got %s\nwant %s", tw, got, base)
		}
	}
}

// TestParallelizeValidation: unregistered and duplicate members are
// rejected, and a rejected call leaves the kernel's ordering untouched.
func TestParallelizeValidation(t *testing.T) {
	k := NewKernel()
	a := &pipeWorker{in: NewQueue[uint64](k, "a", 4), out: NewQueue[uint64](k, "ao", 4)}
	b := &pipeWorker{in: NewQueue[uint64](k, "b", 4), out: NewQueue[uint64](k, "bo", 4)}
	k.Add(a)
	if err := k.Parallelize(a, b); err == nil {
		t.Error("unregistered member accepted")
	}
	if err := k.Parallelize(a, a); err == nil {
		t.Error("duplicate member accepted")
	}
	if err := k.Parallelize(); err != nil {
		t.Errorf("empty Parallelize should be a no-op, got %v", err)
	}
	if err := k.Parallelize(a); err != nil {
		t.Errorf("valid Parallelize failed: %v", err)
	}
	// a is now inside a group: regrouping it must fail.
	if err := k.Parallelize(a); err == nil {
		t.Error("regrouping a grouped member accepted")
	}
}

// TestComponentsFlattensGroups: introspection (check.Attach discovery)
// sees through tick groups.
func TestComponentsFlattensGroups(t *testing.T) {
	k := NewKernel()
	a := &pipeWorker{in: NewQueue[uint64](k, "a", 4), out: NewQueue[uint64](k, "ao", 4)}
	b := &pipeWorker{in: NewQueue[uint64](k, "b", 4), out: NewQueue[uint64](k, "bo", 4)}
	k.Add(a)
	k.Add(b)
	if err := k.Parallelize(a, b); err != nil {
		t.Fatal(err)
	}
	var found int
	for _, c := range k.Components() {
		if c == Component(a) || c == Component(b) {
			found++
		}
		if _, isGroup := c.(*tickGroup); isGroup {
			t.Error("Components leaked a raw tickGroup")
		}
	}
	if found != 2 {
		t.Errorf("Components found %d of 2 grouped members", found)
	}
}
