// Package sim provides the cycle-level simulation kernel that every
// hardware structure in this repository is built on.
//
// The kernel advances a global cycle counter and ticks registered
// components in a fixed order. All inter-component communication flows
// through registered queues (Queue[T]): a value pushed during cycle N
// becomes visible to poppers at cycle N+1, exactly like the
// latency-insensitive queues the paper's Chisel generator emits. This
// discipline makes results independent of component tick order, which is
// what lets a software model stand in for RTL simulation.
package sim

import (
	"fmt"
	"sync"
)

// Cycle is a point in simulated time, measured in controller clock cycles.
type Cycle uint64

// Component is any ticked hardware structure. Tick is called exactly once
// per cycle, in registration order.
type Component interface {
	Tick(c Cycle)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(c Cycle)

// Tick implements Component.
func (f ComponentFunc) Tick(c Cycle) { f(c) }

// committer is the internal interface queues implement so the kernel can
// make staged pushes visible at the end of each cycle.
type committer interface {
	commit()
}

// Observer is notified after every completed kernel step (all components
// ticked, all queues committed), with the cycle that just executed.
// Watchdogs and invariant checkers hang off this hook; when none are
// registered the kernel pays nothing.
type Observer interface {
	AfterStep(c Cycle)
}

// QueueInfo is the type-erased introspection view of a Queue[T]; the
// kernel exposes every registered queue through it so diagnostic layers
// (stall reports, invariant checkers) need not know element types.
type QueueInfo interface {
	Name() string
	Cap() int
	Len() int
	StagedLen() int
	MaxLen() int
	Pushes() uint64
	Pops() uint64
}

// Clogger is implemented by queues that accept a fault hook making them
// report transiently full (deterministic fault injection).
type Clogger interface {
	Name() string
	SetClog(f func() bool)
}

// QueueFullError is the panic value raised by MustPush on a full queue.
// It carries enough state to diagnose the overflow without a debugger;
// hardened run loops (internal/check) recover it into a StallReport.
type QueueFullError struct {
	Queue     string
	Cycle     Cycle
	Occupancy int // committed entries at the failed push
	Staged    int // staged (uncommitted) entries at the failed push
	Cap       int
	MaxLen    int
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("sim: MustPush on full queue %q at cycle %d (occupancy %d+%d staged / cap %d, high-water %d)",
		e.Queue, e.Cycle, e.Occupancy, e.Staged, e.Cap, e.MaxLen)
}

// Kernel owns simulated time. Components are ticked in registration order,
// then all queues commit their staged pushes.
type Kernel struct {
	cycle       Cycle
	comps       []Component
	queues      []committer
	observers   []Observer
	tickWorkers int
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Add registers a component. Components are ticked in the order added.
func (k *Kernel) Add(c Component) { k.comps = append(k.comps, c) }

// Observe registers an observer called after every step.
func (k *Kernel) Observe(o Observer) { k.observers = append(k.observers, o) }

// Components returns the registered components in tick order. Members of
// a parallel tick group (see Parallelize) are expanded in place, so
// discovery layers (internal/check) see the same flat component list
// whether or not any grouping is in effect.
func (k *Kernel) Components() []Component {
	flat := make([]Component, 0, len(k.comps))
	for _, c := range k.comps {
		if g, ok := c.(*tickGroup); ok {
			flat = append(flat, g.members...)
			continue
		}
		flat = append(flat, c)
	}
	return flat
}

// SetTickWorkers bounds the goroutines a parallel tick group may fan out
// to each cycle. Values ≤ 1 tick every group serially; the simulated
// results are identical for every setting, only wall time changes.
func (k *Kernel) SetTickWorkers(n int) { k.tickWorkers = n }

// Parallelize collapses the given already-registered components into one
// tick group that runs them concurrently within a cycle (bounded by
// SetTickWorkers). The group occupies the position of its first member in
// tick order, so Step still ticks everything exactly once per cycle.
//
// Grouped components must not share mutable state during a tick: the
// queue discipline (staged pushes commit after all components ticked)
// already guarantees this for components that only talk through
// registered queues they own, which is what makes the grouping
// result-invariant. Queue commits and observers stay serial.
func (k *Kernel) Parallelize(members ...Component) error {
	if len(members) == 0 {
		return nil
	}
	pos := make(map[int]bool, len(members))
	first := -1
	for mi, m := range members {
		found := -1
		for i, c := range k.comps {
			if c == m {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sim: Parallelize: member %d not registered (or already grouped)", mi)
		}
		if pos[found] {
			return fmt.Errorf("sim: Parallelize: member %d listed twice", mi)
		}
		pos[found] = true
		if first < 0 || found < first {
			first = found
		}
	}
	g := &tickGroup{k: k, members: append([]Component(nil), members...)}
	next := make([]Component, 0, len(k.comps)-len(members)+1)
	for i, c := range k.comps {
		if i == first {
			next = append(next, g)
		}
		if pos[i] {
			continue
		}
		next = append(next, c)
	}
	k.comps = next
	return nil
}

// tickGroup runs its members concurrently within one cycle. Membership
// order is preserved for the serial fallback so a group is byte-for-byte
// equivalent to ungrouped registration.
type tickGroup struct {
	k       *Kernel
	members []Component
}

// Tick implements Component: fan the members out over the kernel's tick
// worker budget and wait for all of them before the cycle commits.
func (g *tickGroup) Tick(c Cycle) {
	workers := g.k.tickWorkers
	if workers > len(g.members) {
		workers = len(g.members)
	}
	if workers <= 1 {
		for _, m := range g.members {
			m.Tick(c)
		}
		return
	}
	chunk := (len(g.members) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(g.members); lo += chunk {
		hi := min(lo+chunk, len(g.members))
		wg.Add(1)
		go func(ms []Component) {
			defer wg.Done()
			for _, m := range ms {
				m.Tick(c)
			}
		}(g.members[lo:hi])
	}
	wg.Wait()
}

// Queues returns the introspection view of every registered queue.
func (k *Kernel) Queues() []QueueInfo {
	out := make([]QueueInfo, 0, len(k.queues))
	for _, q := range k.queues {
		if qi, ok := q.(QueueInfo); ok {
			out = append(out, qi)
		}
	}
	return out
}

// Cycle reports the current cycle (the number of completed steps).
func (k *Kernel) Cycle() Cycle { return k.cycle }

// Step advances simulated time by one cycle: every component ticks, then
// every queue commits.
func (k *Kernel) Step() {
	for _, c := range k.comps {
		c.Tick(k.cycle)
	}
	for _, q := range k.queues {
		q.commit()
	}
	if len(k.observers) != 0 {
		for _, o := range k.observers {
			o.AfterStep(k.cycle)
		}
	}
	k.cycle++
}

// Run steps the kernel n times.
func (k *Kernel) Run(n int) {
	for i := 0; i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or the budget of max
// cycles is exhausted. It returns true if done became true.
func (k *Kernel) RunUntil(done func() bool, max int) bool {
	for i := 0; i < max; i++ {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}

// Queue is a bounded registered FIFO. Pushes made during a cycle are staged
// and become poppable only after the kernel commits at the end of the
// cycle. Capacity counts committed plus staged entries, so producers see
// back-pressure immediately.
type Queue[T any] struct {
	name   string
	cap    int
	k      *Kernel
	items  []T
	staged []T
	clog   func() bool // fault hook: true → report full this cycle

	// Stats.
	pushes uint64
	pops   uint64
	maxLen int
}

// NewQueue creates a queue with the given capacity, registered with the
// kernel so its staged pushes commit each cycle. Capacity must be positive.
func NewQueue[T any](k *Kernel, name string, capacity int) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: queue %q capacity must be positive, got %d", name, capacity))
	}
	q := &Queue[T]{name: name, cap: capacity, k: k}
	k.queues = append(k.queues, q)
	return q
}

// Name returns the queue's diagnostic name.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Len returns the number of committed (poppable) entries.
func (q *Queue[T]) Len() int { return len(q.items) }

// CanPush reports whether a push this cycle would be accepted.
func (q *Queue[T]) CanPush() bool {
	if q.clog != nil && q.clog() {
		return false
	}
	return len(q.items)+len(q.staged) < q.cap
}

// Free returns how many pushes would currently be accepted.
func (q *Queue[T]) Free() int {
	if q.clog != nil && q.clog() {
		return 0
	}
	return q.cap - len(q.items) - len(q.staged)
}

// SetClog installs a fault hook: while f reports true the queue refuses
// pushes as if full. f must be stable within a cycle so CanPush/Push pairs
// stay consistent. Pass nil to clear. Implements Clogger.
func (q *Queue[T]) SetClog(f func() bool) { q.clog = f }

// Push stages v for commit at the end of the cycle. It reports false if
// the queue is full (the caller must retry a later cycle).
func (q *Queue[T]) Push(v T) bool {
	if !q.CanPush() {
		return false
	}
	q.staged = append(q.staged, v)
	q.pushes++
	// The high-water mark tracks peak occupancy including staged entries:
	// this is the occupancy producers see through CanPush, so a queue that
	// fills and drains within one cycle still records the pressure.
	if occ := len(q.items) + len(q.staged); occ > q.maxLen {
		q.maxLen = occ
	}
	return true
}

// MustPush panics with a *QueueFullError if the queue is full. Use only
// where the design guarantees space (e.g., a response queue sized to
// outstanding requests); hardened run loops recover the error into a
// StallReport instead of crashing.
func (q *Queue[T]) MustPush(v T) {
	if !q.Push(v) {
		panic(&QueueFullError{
			Queue: q.name, Cycle: q.k.cycle,
			Occupancy: len(q.items), Staged: len(q.staged),
			Cap: q.cap, MaxLen: q.maxLen,
		})
	}
}

// Peek returns the head without consuming it. ok is false when empty.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

// shrinkCap is the backing-array size above which a drained queue
// re-allocates a smaller array (bounds memory on million-cycle runs).
const shrinkCap = 32

// Pop consumes and returns the head. ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	// Shift rather than re-slice so the backing array does not grow
	// without bound over long simulations, and zero the vacated slot so
	// element payloads (e.g. fill data slices) become collectable.
	copy(q.items, q.items[1:])
	var zero T
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	q.pops++
	if cap(q.items) >= shrinkCap && len(q.items) <= cap(q.items)/4 {
		shrunk := make([]T, len(q.items), 2*len(q.items)+1)
		copy(shrunk, q.items)
		q.items = shrunk
	}
	return v, true
}

// Pushes returns the lifetime number of accepted pushes.
func (q *Queue[T]) Pushes() uint64 { return q.pushes }

// Pops returns the lifetime number of pops.
func (q *Queue[T]) Pops() uint64 { return q.pops }

// MaxLen returns the high-water mark of occupancy, counting staged
// entries at the moment they were pushed (the back-pressure view).
func (q *Queue[T]) MaxLen() int { return q.maxLen }

// StagedLen returns the number of staged (uncommitted) entries.
func (q *Queue[T]) StagedLen() int { return len(q.staged) }

func (q *Queue[T]) commit() {
	if len(q.staged) > 0 {
		q.items = append(q.items, q.staged...)
		clear(q.staged) // release element payload references
		q.staged = q.staged[:0]
	}
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
}
