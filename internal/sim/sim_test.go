package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueRegisteredVisibility(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	if !q.Push(7) {
		t.Fatal("push failed on empty queue")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop saw a value pushed this cycle; queue must be registered")
	}
	k.Step()
	v, ok := q.Pop()
	if !ok || v != 7 {
		t.Fatalf("after commit: got (%d,%v), want (7,true)", v, ok)
	}
}

func TestQueueBackpressureCountsStaged(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity accepted (staged entries must count)")
	}
	k.Step()
	if q.Push(3) {
		t.Fatal("push accepted while committed entries fill capacity")
	}
	q.Pop()
	if !q.Push(3) {
		t.Fatal("push rejected after a pop freed space")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 100)
	for i := 0; i < 50; i++ {
		q.MustPush(i)
	}
	k.Step()
	for i := 0; i < 50; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestQueuePeekDoesNotConsume(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, "q", 2)
	q.MustPush("a")
	k.Step()
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek: got (%q,%v)", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("peek consumed: len=%d", q.Len())
	}
}

func TestKernelTickOrderAndCycle(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Add(ComponentFunc(func(c Cycle) { order = append(order, 1) }))
	k.Add(ComponentFunc(func(c Cycle) { order = append(order, 2) }))
	k.Run(2)
	want := []int{1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("ticks: got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order: got %v want %v", order, want)
		}
	}
	if k.Cycle() != 2 {
		t.Fatalf("cycle: got %d want 2", k.Cycle())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Add(ComponentFunc(func(c Cycle) { n++ }))
	if !k.RunUntil(func() bool { return n >= 10 }, 100) {
		t.Fatal("RunUntil did not report completion")
	}
	if n != 10 {
		t.Fatalf("ran %d cycles, want 10", n)
	}
	if k.RunUntil(func() bool { return false }, 5) {
		t.Fatal("RunUntil reported completion for impossible condition")
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewQueue[int](NewKernel(), "bad", 0)
}

func TestMustPushPanicsWhenFull(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 1)
	q.MustPush(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.MustPush(2)
}

// Property: for any sequence of pushes, popping after commits returns the
// same values in the same order, and occupancy never exceeds capacity.
func TestQueuePreservesSequenceProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		k := NewKernel()
		q := NewQueue[uint16](k, "q", len(vals)+1)
		for _, v := range vals {
			if !q.Push(v) {
				return false
			}
		}
		k.Step()
		if q.Len() > q.Cap() {
			return false
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueStats(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 8)
	for i := 0; i < 5; i++ {
		q.MustPush(i)
	}
	k.Step()
	q.Pop()
	q.Pop()
	if q.Pushes() != 5 || q.Pops() != 2 || q.MaxLen() != 5 {
		t.Fatalf("stats: pushes=%d pops=%d max=%d", q.Pushes(), q.Pops(), q.MaxLen())
	}
}

func TestRunUntilDoneAtEntryAndAtBudgetEdge(t *testing.T) {
	// Done before the first step: no cycles may elapse.
	k := NewKernel()
	if !k.RunUntil(func() bool { return true }, 100) {
		t.Fatal("RunUntil missed an already-true condition")
	}
	if k.Cycle() != 0 {
		t.Fatalf("stepped %d cycles for an already-true condition", k.Cycle())
	}
	// Done becomes true exactly when the budget runs out: the final check
	// after the last step must still see it.
	k2 := NewKernel()
	n := 0
	k2.Add(ComponentFunc(func(c Cycle) { n++ }))
	if !k2.RunUntil(func() bool { return n >= 5 }, 5) {
		t.Fatal("RunUntil missed a condition satisfied by the last budgeted step")
	}
	// Never done: budget must bound the work exactly.
	k3 := NewKernel()
	steps := 0
	k3.Add(ComponentFunc(func(c Cycle) { steps++ }))
	if k3.RunUntil(func() bool { return false }, 7) {
		t.Fatal("RunUntil reported completion for an impossible condition")
	}
	if steps != 7 {
		t.Fatalf("ran %d steps, want exactly the budget of 7", steps)
	}
}

// Same-cycle push+pop on an exactly-full queue. Pushes are staged but
// pops act immediately, so the contract is asymmetric by design: a
// producer ticked before the consumer sees the queue still full (its
// push is refused; back-pressure is conservative), while a consumer
// ticked first frees the slot for this cycle's push. Either way occupancy
// never exceeds capacity and FIFO data is preserved.
func TestFullQueueSameCyclePushPop(t *testing.T) {
	run := func(producerFirst bool) (accepted int, q *Queue[int]) {
		k := NewKernel()
		q = NewQueue[int](k, "q", 1)
		producer := ComponentFunc(func(c Cycle) {
			if q.Push(int(c)) {
				accepted++
			}
		})
		consumer := ComponentFunc(func(c Cycle) { q.Pop() })
		if producerFirst {
			k.Add(producer)
			k.Add(consumer)
		} else {
			k.Add(consumer)
			k.Add(producer)
		}
		for i := 0; i < 6; i++ {
			k.Step()
			if q.Len()+q.StagedLen() > q.Cap() {
				t.Fatalf("occupancy %d+%d exceeded cap %d", q.Len(), q.StagedLen(), q.Cap())
			}
		}
		return accepted, q
	}
	// Producer first: the cycle-N push is refused while cycle N-1's entry
	// is committed and un-popped, so pushes land every other cycle.
	if accepted, _ := run(true); accepted != 3 {
		t.Fatalf("producer-first accepted %d pushes in 6 cycles, want 3", accepted)
	}
	// Consumer first: each pop frees the single slot before the producer
	// ticks, so every push is accepted.
	if accepted, _ := run(false); accepted != 6 {
		t.Fatalf("consumer-first accepted %d pushes in 6 cycles, want 6", accepted)
	}
}

// Two components exchanging values through queues must produce identical
// traffic regardless of registration order.
func TestCommitOrderIndependence(t *testing.T) {
	run := func(pingFirst bool) []int {
		k := NewKernel()
		ab := NewQueue[int](k, "ab", 4)
		ba := NewQueue[int](k, "ba", 4)
		var seen []int
		ping := ComponentFunc(func(c Cycle) {
			if v, ok := ba.Pop(); ok {
				ab.Push(v + 1)
			} else if c == 0 {
				ab.Push(100)
			}
		})
		pong := ComponentFunc(func(c Cycle) {
			if v, ok := ab.Pop(); ok {
				seen = append(seen, v)
				ba.Push(v)
			}
		})
		if pingFirst {
			k.Add(ping)
			k.Add(pong)
		} else {
			k.Add(pong)
			k.Add(ping)
		}
		k.Run(12)
		return seen
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("registration order changed traffic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("registration order changed traffic: %v vs %v", a, b)
		}
	}
}

func TestMustPushPanicsWithDiagnosticError(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "resp", 2)
	q.MustPush(1)
	k.Step()
	q.MustPush(2) // staged
	defer func() {
		r := recover()
		qf, ok := r.(*QueueFullError)
		if !ok {
			t.Fatalf("panic value %T, want *QueueFullError", r)
		}
		if qf.Queue != "resp" || qf.Cycle != 1 || qf.Occupancy != 1 || qf.Staged != 1 || qf.Cap != 2 {
			t.Fatalf("bad diagnostics: %+v", qf)
		}
		if qf.Error() == "" {
			t.Fatal("empty error string")
		}
	}()
	q.MustPush(3)
}

func TestMaxLenCountsStagedOccupancy(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 8)
	// Fill-and-drain within single cycles: committed length never exceeds
	// 1, but producers saw occupancy 3 through back-pressure.
	q.MustPush(1)
	q.MustPush(2)
	q.MustPush(3)
	k.Step()
	q.Pop()
	q.Pop()
	if q.MaxLen() != 3 {
		t.Fatalf("MaxLen=%d, want 3 (staged entries are real occupancy)", q.MaxLen())
	}
	q.MustPush(4)
	q.MustPush(5)
	if q.MaxLen() != 3 {
		t.Fatalf("MaxLen=%d after partial refill, want 3", q.MaxLen())
	}
}

func TestPopShrinksBackingArray(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4096)
	for i := 0; i < 2048; i++ {
		q.MustPush(i)
	}
	k.Step()
	for i := 0; i < 2040; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	if c := cap(q.items); c > 64 {
		t.Fatalf("backing array cap=%d after drain to len=%d; shrink did not engage", c, q.Len())
	}
	// The queue still works after shrinking.
	if v, ok := q.Pop(); !ok || v != 2040 {
		t.Fatalf("post-shrink pop: got (%d,%v), want (2040,true)", v, ok)
	}
}

func TestClogMakesQueueReportFull(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	clogged := true
	q.SetClog(func() bool { return clogged })
	if q.CanPush() || q.Free() != 0 || q.Push(1) {
		t.Fatal("clogged queue accepted a push")
	}
	clogged = false
	if !q.Push(1) {
		t.Fatal("unclogged queue refused a push")
	}
	q.SetClog(nil)
	if !q.CanPush() {
		t.Fatal("cleared clog still blocks")
	}
}

func TestObserverRunsAfterCommit(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	k.Add(ComponentFunc(func(c Cycle) {
		if c == 0 {
			q.Push(9)
		}
	}))
	var lens []int
	var cycles []Cycle
	k.Observe(observerFunc(func(c Cycle) {
		lens = append(lens, q.Len())
		cycles = append(cycles, c)
	}))
	k.Run(2)
	if len(lens) != 2 || lens[0] != 1 {
		t.Fatalf("observer saw lens %v; cycle-0 push must be committed before AfterStep", lens)
	}
	if cycles[0] != 0 || cycles[1] != 1 {
		t.Fatalf("observer cycles %v, want [0 1]", cycles)
	}
}

type observerFunc func(c Cycle)

func (f observerFunc) AfterStep(c Cycle) { f(c) }
