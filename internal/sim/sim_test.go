package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueRegisteredVisibility(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	if !q.Push(7) {
		t.Fatal("push failed on empty queue")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop saw a value pushed this cycle; queue must be registered")
	}
	k.Step()
	v, ok := q.Pop()
	if !ok || v != 7 {
		t.Fatalf("after commit: got (%d,%v), want (7,true)", v, ok)
	}
}

func TestQueueBackpressureCountsStaged(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity accepted (staged entries must count)")
	}
	k.Step()
	if q.Push(3) {
		t.Fatal("push accepted while committed entries fill capacity")
	}
	q.Pop()
	if !q.Push(3) {
		t.Fatal("push rejected after a pop freed space")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 100)
	for i := 0; i < 50; i++ {
		q.MustPush(i)
	}
	k.Step()
	for i := 0; i < 50; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestQueuePeekDoesNotConsume(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, "q", 2)
	q.MustPush("a")
	k.Step()
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek: got (%q,%v)", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("peek consumed: len=%d", q.Len())
	}
}

func TestKernelTickOrderAndCycle(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Add(ComponentFunc(func(c Cycle) { order = append(order, 1) }))
	k.Add(ComponentFunc(func(c Cycle) { order = append(order, 2) }))
	k.Run(2)
	want := []int{1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("ticks: got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order: got %v want %v", order, want)
		}
	}
	if k.Cycle() != 2 {
		t.Fatalf("cycle: got %d want 2", k.Cycle())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Add(ComponentFunc(func(c Cycle) { n++ }))
	if !k.RunUntil(func() bool { return n >= 10 }, 100) {
		t.Fatal("RunUntil did not report completion")
	}
	if n != 10 {
		t.Fatalf("ran %d cycles, want 10", n)
	}
	if k.RunUntil(func() bool { return false }, 5) {
		t.Fatal("RunUntil reported completion for impossible condition")
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewQueue[int](NewKernel(), "bad", 0)
}

func TestMustPushPanicsWhenFull(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 1)
	q.MustPush(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.MustPush(2)
}

// Property: for any sequence of pushes, popping after commits returns the
// same values in the same order, and occupancy never exceeds capacity.
func TestQueuePreservesSequenceProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		k := NewKernel()
		q := NewQueue[uint16](k, "q", len(vals)+1)
		for _, v := range vals {
			if !q.Push(v) {
				return false
			}
		}
		k.Step()
		if q.Len() > q.Cap() {
			return false
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueStats(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 8)
	for i := 0; i < 5; i++ {
		q.MustPush(i)
	}
	k.Step()
	q.Pop()
	q.Pop()
	if q.Pushes() != 5 || q.Pops() != 2 || q.MaxLen() != 5 {
		t.Fatalf("stats: pushes=%d pops=%d max=%d", q.Pushes(), q.Pops(), q.MaxLen())
	}
}
