// Package sparse provides the compressed sparse matrix substrate the
// SpGEMM DSAs (SpArch, Gamma) operate on: CSR/CSC structures, synthetic
// generators matched to the paper's inputs (p2p-Gnutella-like power-law
// graphs via R-MAT), in-memory-image layout for the simulated DRAM, and
// reference SpGEMM algorithms (inner product, outer product, Gustavson)
// used to validate the DSA pipelines functionally.
package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"xcache/internal/mem"
)

// CSR is a compressed-sparse-row matrix. The same struct stores CSC
// matrices (interpret Rows as columns); Transpose converts between them.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1
	Col        []int64 // len NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// RowNNZ returns the number of entries in row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// Row returns the column indices and values of row r.
func (m *CSR) Row(r int) ([]int64, []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// Coord is one COO entry.
type Coord struct {
	R, C int
	V    float64
}

// FromCOO builds a CSR from coordinates, summing duplicates.
func FromCOO(rows, cols int, coords []Coord) *CSR {
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].R != coords[j].R {
			return coords[i].R < coords[j].R
		}
		return coords[i].C < coords[j].C
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i := 0; i < len(coords); {
		j := i
		v := 0.0
		for j < len(coords) && coords[j].R == coords[i].R && coords[j].C == coords[i].C {
			v += coords[j].V
			j++
		}
		m.Col = append(m.Col, int64(coords[i].C))
		m.Val = append(m.Val, v)
		m.RowPtr[coords[i].R+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// Transpose returns the transpose (CSR of Aᵀ, equivalently the CSC of A).
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		Col:    make([]int64, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, c := range m.Col {
		t.RowPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		t.RowPtr[c+1] += t.RowPtr[c]
	}
	cursor := make([]int64, m.Cols)
	copy(cursor, t.RowPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.Col[i]
			t.Col[cursor[c]] = int64(r)
			t.Val[cursor[c]] = m.Val[i]
			cursor[c]++
		}
	}
	return t
}

// RMAT generates a power-law sparse matrix in the style of the SNAP
// peer-to-peer graphs the paper evaluates (p2p-Gnutella08: 6.3K/21K,
// p2p-Gnutella31: 67K/147K). n is rounded up to a power of two internally
// but the returned matrix is n×n.
func RMAT(n, nnz int, seed int64) *CSR {
	const a, b, c = 0.57, 0.19, 0.19
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	seen := map[[2]int]bool{}
	coords := make([]Coord, 0, nnz)
	for len(coords) < nnz {
		r, cc := 0, 0
		for l := 0; l < levels; l++ {
			p := rng.Float64()
			switch {
			case p < a:
			case p < a+b:
				cc |= 1 << l
			case p < a+b+c:
				r |= 1 << l
			default:
				r |= 1 << l
				cc |= 1 << l
			}
		}
		if r >= n || cc >= n || seen[[2]int{r, cc}] {
			continue
		}
		seen[[2]int{r, cc}] = true
		coords = append(coords, Coord{R: r, C: cc, V: float64(rng.Intn(9) + 1)})
	}
	return FromCOO(n, n, coords)
}

// Uniform generates an Erdős–Rényi-style matrix with nnz random entries.
func Uniform(rows, cols, nnz int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]int]bool{}
	coords := make([]Coord, 0, nnz)
	for len(coords) < nnz {
		r, c := rng.Intn(rows), rng.Intn(cols)
		if seen[[2]int{r, c}] {
			continue
		}
		seen[[2]int{r, c}] = true
		coords = append(coords, Coord{R: r, C: c, V: float64(rng.Intn(9) + 1)})
	}
	return FromCOO(rows, cols, coords)
}

// Layout is a CSR laid out in the simulated memory image: row_ptr, column
// index and value arrays, each 8 bytes per element (values as
// math.Float64bits).
type Layout struct {
	RowPtr uint64 // (Rows+1) words
	Col    uint64 // NNZ words
	Val    uint64 // NNZ words
	// CV is the interleaved (col, val) pair array the SpGEMM DSAs fetch
	// rows from: row k occupies words [2·RowPtr[k], 2·RowPtr[k+1]), with
	// 8 words of slack at the end so full-burst refills never fault.
	CV uint64
}

// WriteTo lays the matrix out in the image and returns the base addresses.
func (m *CSR) WriteTo(img *mem.Image) Layout {
	l := Layout{
		RowPtr: img.AllocWords(len(m.RowPtr)),
		Col:    img.AllocWords(m.NNZ() + 1),
		Val:    img.AllocWords(m.NNZ() + 1),
		CV:     img.AllocWords(2*m.NNZ() + 8),
	}
	for i, p := range m.RowPtr {
		img.W64(l.RowPtr+uint64(i)*8, uint64(p))
	}
	for i := range m.Col {
		img.W64(l.Col+uint64(i)*8, uint64(m.Col[i]))
		img.W64(l.Val+uint64(i)*8, math.Float64bits(m.Val[i]))
		img.W64(l.CV+uint64(2*i)*8, uint64(m.Col[i]))
		img.W64(l.CV+uint64(2*i+1)*8, math.Float64bits(m.Val[i]))
	}
	return l
}

// Dense expands the matrix for small-scale validation.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for r := range d {
		d[r] = make([]float64, m.Cols)
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			d[r][m.Col[i]] = m.Val[i]
		}
	}
	return d
}

// Equal reports whether two matrices match within eps.
func Equal(a, b *CSR, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	da, db := a.Dense(), b.Dense()
	for r := range da {
		for c := range da[r] {
			if math.Abs(da[r][c]-db[r][c]) > eps {
				return false
			}
		}
	}
	return true
}

// MulGustavson computes A×B row-by-row (Gamma's algorithm): for each
// nonzero A[i,k], accumulate A[i,k] · B[k,:] into row i.
func MulGustavson(a, b *CSR) *CSR {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var coords []Coord
	acc := map[int64]float64{}
	for i := 0; i < a.Rows; i++ {
		for k := range acc {
			delete(acc, k)
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k, av := a.Col[p], a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				acc[b.Col[q]] += av * b.Val[q]
			}
		}
		for c, v := range acc {
			if v != 0 {
				coords = append(coords, Coord{R: i, C: int(c), V: v})
			}
		}
	}
	return FromCOO(a.Rows, b.Cols, coords)
}

// MulOuter computes A×B by outer products (SpArch's algorithm): for each
// column k of A (using Aᵀ) and row k of B, emit the cross product.
func MulOuter(a, b *CSR) *CSR {
	at := a.Transpose() // columns of A
	var coords []Coord
	for k := 0; k < a.Cols; k++ {
		aCols, aVals := at.Row(k)
		bCols, bVals := b.Row(k)
		for i := range aCols {
			for j := range bCols {
				coords = append(coords, Coord{R: int(aCols[i]), C: int(bCols[j]), V: aVals[i] * bVals[j]})
			}
		}
	}
	return FromCOO(a.Rows, b.Cols, coords)
}

// MulInner computes A×B by inner products (the Fig 2 walker): C[i,j] =
// ⟨row i of A, column j of B⟩, skipping empty intersections.
func MulInner(a, b *CSR) *CSR {
	bt := b.Transpose() // columns of B as rows
	var coords []Coord
	for i := 0; i < a.Rows; i++ {
		aCols, aVals := a.Row(i)
		if len(aCols) == 0 {
			continue
		}
		for j := 0; j < b.Cols; j++ {
			bCols, bVals := bt.Row(j)
			sum, ai, bi := 0.0, 0, 0
			for ai < len(aCols) && bi < len(bCols) {
				switch {
				case aCols[ai] == bCols[bi]:
					sum += aVals[ai] * bVals[bi]
					ai++
					bi++
				case aCols[ai] < bCols[bi]:
					ai++
				default:
					bi++
				}
			}
			if sum != 0 {
				coords = append(coords, Coord{R: i, C: j, V: sum})
			}
		}
	}
	return FromCOO(a.Rows, b.Cols, coords)
}
