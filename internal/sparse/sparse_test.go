package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/mem"
)

func small() (*CSR, *CSR) {
	a := FromCOO(3, 3, []Coord{{0, 0, 2}, {0, 2, 1}, {1, 1, 3}, {2, 0, 4}})
	b := FromCOO(3, 3, []Coord{{0, 1, 5}, {1, 1, 1}, {2, 0, 2}, {2, 2, 6}})
	return a, b
}

func TestFromCOOAndDense(t *testing.T) {
	a, _ := small()
	d := a.Dense()
	if d[0][0] != 2 || d[0][2] != 1 || d[1][1] != 3 || d[2][0] != 4 {
		t.Fatalf("dense: %v", d)
	}
	if a.NNZ() != 4 || a.RowNNZ(0) != 2 {
		t.Fatalf("nnz: %d rownnz0: %d", a.NNZ(), a.RowNNZ(0))
	}
}

func TestFromCOOSumsDuplicates(t *testing.T) {
	m := FromCOO(2, 2, []Coord{{0, 0, 1}, {0, 0, 2}, {1, 1, 5}})
	if m.NNZ() != 2 || m.Dense()[0][0] != 3 {
		t.Fatalf("dup handling: nnz=%d dense=%v", m.NNZ(), m.Dense())
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Uniform(8+rng.Intn(8), 8+rng.Intn(8), 30, seed)
		return Equal(m, m.Transpose().Transpose(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesDense(t *testing.T) {
	a, b := small()
	want := [][]float64{{2*0 + 1*2, 2 * 5, 1 * 6}, {0, 3, 0}, {0, 4 * 5, 0}}
	got := MulGustavson(a, b).Dense()
	for r := range want {
		for c := range want[r] {
			if math.Abs(got[r][c]-want[r][c]) > 1e-12 {
				t.Fatalf("C[%d][%d]=%v want %v", r, c, got[r][c], want[r][c])
			}
		}
	}
}

// Property: the three SpGEMM algorithms (the three DSA dataflows) agree.
func TestSpGEMMAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		n := 6 + int(uint64(seed)%10)
		a := Uniform(n, n, n*2, seed)
		b := Uniform(n, n, n*2, seed+1)
		g := MulGustavson(a, b)
		return Equal(g, MulOuter(a, b), 1e-9) && Equal(g, MulInner(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRMATShape(t *testing.T) {
	m := RMAT(1024, 4000, 1)
	if m.Rows != 1024 || m.NNZ() != 4000 {
		t.Fatalf("rows=%d nnz=%d", m.Rows, m.NNZ())
	}
	// Power-law: the top 10% of rows should hold well over 10% of entries.
	counts := make([]int, m.Rows)
	for r := 0; r < m.Rows; r++ {
		counts[r] = m.RowNNZ(r)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10 {
		t.Fatalf("R-MAT too uniform: max row nnz %d", max)
	}
}

func TestWriteToImageRoundTrip(t *testing.T) {
	a, _ := small()
	img := mem.NewImage()
	l := a.WriteTo(img)
	for r := 0; r <= a.Rows; r++ {
		if got := img.R64(l.RowPtr + uint64(r)*8); got != uint64(a.RowPtr[r]) {
			t.Fatalf("rowptr[%d]=%d want %d", r, got, a.RowPtr[r])
		}
	}
	for i := 0; i < a.NNZ(); i++ {
		if got := img.R64(l.Col + uint64(i)*8); got != uint64(a.Col[i]) {
			t.Fatalf("col[%d]=%d", i, got)
		}
		if got := math.Float64frombits(img.R64(l.Val + uint64(i)*8)); got != a.Val[i] {
			t.Fatalf("val[%d]=%v", i, got)
		}
	}
}

func TestTransposeIsCSC(t *testing.T) {
	a, _ := small()
	at := a.Transpose()
	// Column 0 of A has entries at rows 0 (val 2) and 2 (val 4).
	cols, vals := at.Row(0)
	if len(cols) != 2 || cols[0] != 0 || vals[0] != 2 || cols[1] != 2 || vals[1] != 4 {
		t.Fatalf("CSC col 0: %v %v", cols, vals)
	}
}
