// Package stats provides the small table/series formatting layer shared
// by the experiment harness (internal/exp), cmd/xcache-bench and the
// benchmark suite.
package stats

import (
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row formatting each value with %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = F2(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := map[int]int{}
	for _, row := range all {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		total := 0
		for i := range t.Header {
			total += widths[i] + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Merge appends other's rows to t. The tables must share a header; the
// row order is t's rows followed by other's, so merging partial tables
// produced by concurrent workers in a fixed sequence is deterministic.
func (t *Table) Merge(other *Table) error {
	if len(other.Header) != len(t.Header) {
		return fmt.Errorf("stats: merge header arity %d != %d", len(other.Header), len(t.Header))
	}
	for i, h := range other.Header {
		if h != t.Header[i] {
			return fmt.Errorf("stats: merge header mismatch at column %d: %q != %q", i, h, t.Header[i])
		}
	}
	t.Rows = append(t.Rows, other.Rows...)
	return nil
}

// Diff returns one human-readable line per difference between two
// tables: title, header, row count, and per-cell mismatches, each
// located by row and column. Identical tables yield nil.
func Diff(got, want *Table) []string {
	var d []string
	if got.Title != want.Title {
		d = append(d, fmt.Sprintf("title: got %q want %q", got.Title, want.Title))
	}
	if len(got.Header) != len(want.Header) {
		d = append(d, fmt.Sprintf("header: got %d columns want %d", len(got.Header), len(want.Header)))
	} else {
		for i := range want.Header {
			if got.Header[i] != want.Header[i] {
				d = append(d, fmt.Sprintf("header col %d: got %q want %q", i, got.Header[i], want.Header[i]))
			}
		}
	}
	if len(got.Rows) != len(want.Rows) {
		d = append(d, fmt.Sprintf("rows: got %d want %d", len(got.Rows), len(want.Rows)))
	}
	for r := 0; r < len(got.Rows) && r < len(want.Rows); r++ {
		g, w := got.Rows[r], want.Rows[r]
		if len(g) != len(w) {
			d = append(d, fmt.Sprintf("row %d: got %d cells want %d", r, len(g), len(w)))
			continue
		}
		for c := range w {
			if g[c] != w[c] {
				col := fmt.Sprintf("col %d", c)
				if c < len(want.Header) {
					col = fmt.Sprintf("col %d (%s)", c, want.Header[c])
				}
				d = append(d, fmt.Sprintf("row %d %s: got %q want %q", r, col, g[c], w[c]))
			}
		}
	}
	return d
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// I formats an integer with thousands separators.
func I[T ~int | ~int64 | ~uint64 | ~int32 | ~uint32](n T) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Histogram is a power-of-two-bucketed latency histogram: bucket i counts
// values in [2^i, 2^(i+1)).
type Histogram [28]uint64

// Add records one value.
func (h *Histogram) Add(v uint64) {
	b := 0
	for v > 1 && b < len(h)-1 {
		v >>= 1
		b++
	}
	h[b]++
}

// Merge adds other's counts into h, so per-tenant or per-shard histograms
// aggregate into fleet-wide percentiles without re-recording samples.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other {
		h[i] += c
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, c := range h {
		n += c
	}
	return n
}

// Percentile returns an upper bound on the p-quantile (0 < p ≤ 1): the
// top of the bucket containing it.
func (h *Histogram) Percentile(p float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	// Ceiling: the smallest count covering the p fraction.
	target := uint64(p*float64(total) + 0.9999999)
	if target == 0 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i, c := range h {
		seen += c
		if seen >= target {
			return (uint64(1) << uint(i+1)) - 1
		}
	}
	return ^uint64(0)
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%d,%d): %d\n", uint64(1)<<uint(i), uint64(1)<<uint(i+1), c)
	}
	return b.String()
}
