// Package stats provides the small table/series formatting layer shared
// by the experiment harness (internal/exp), cmd/xcache-bench and the
// benchmark suite.
package stats

import (
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row formatting each value with %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = F2(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := map[int]int{}
	for _, row := range all {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		total := 0
		for i := range t.Header {
			total += widths[i] + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// I formats an integer with thousands separators.
func I[T ~int | ~int64 | ~uint64 | ~int32 | ~uint32](n T) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Histogram is a power-of-two-bucketed latency histogram: bucket i counts
// values in [2^i, 2^(i+1)).
type Histogram [28]uint64

// Add records one value.
func (h *Histogram) Add(v uint64) {
	b := 0
	for v > 1 && b < len(h)-1 {
		v >>= 1
		b++
	}
	h[b]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, c := range h {
		n += c
	}
	return n
}

// Percentile returns an upper bound on the p-quantile (0 < p ≤ 1): the
// top of the bucket containing it.
func (h *Histogram) Percentile(p float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	// Ceiling: the smallest count covering the p fraction.
	target := uint64(p*float64(total) + 0.9999999)
	if target == 0 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i, c := range h {
		seen += c
		if seen >= target {
			return (uint64(1) << uint(i+1)) - 1
		}
	}
	return ^uint64(0)
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%d,%d): %d\n", uint64(1)<<uint(i), uint64(1)<<uint(i+1), c)
	}
	return b.String()
}
