package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "DSA", "Speedup")
	tb.Add("Widx", "1.54")
	tb.Addf("SpArch", 1.0)
	s := tb.String()
	for _, want := range []string{"== Demo ==", "DSA", "Widx", "1.54", "SpArch", "1.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
}

func TestI(t *testing.T) {
	cases := map[int64]string{
		0: "0", 12: "12", 1234: "1,234", 1234567: "1,234,567", -9876: "-9,876",
	}
	for n, want := range cases {
		if got := I(n); got != want {
			t.Errorf("I(%d)=%q want %q", n, got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2: %s", F2(1.005))
	}
	if Pct(0.265) != "26.5%" {
		t.Errorf("Pct: %s", Pct(0.265))
	}
	if F1(3.14159) != "3.1" {
		t.Errorf("F1: %s", F1(3.14159))
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 4, 100, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	// p50 over {1,2,3,4,100,100,1000}: 4th value = 4 → bucket [4,8).
	if p := h.Percentile(0.5); p < 4 || p > 7 {
		t.Fatalf("p50 bound %d", p)
	}
	if p := h.Percentile(1.0); p < 1000 {
		t.Fatalf("p100 bound %d", p)
	}
	if !strings.Contains(h.String(), "[64,128): 2") {
		t.Fatalf("render:\n%s", h.String())
	}
	var empty Histogram
	if empty.Percentile(0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestHistogramZeroAndHuge(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(^uint64(0))
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if h[0] != 1 || h[len(h)-1] != 1 {
		t.Fatalf("extremes landed wrong: %v", h)
	}
}

func TestTableMerge(t *testing.T) {
	a := NewTable("t", "A", "B")
	a.Add("1", "2")
	b := NewTable("other title ok", "A", "B")
	b.Add("3", "4")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 || a.Rows[1][0] != "3" {
		t.Fatalf("merged rows %v", a.Rows)
	}
	c := NewTable("t", "A", "C")
	if err := a.Merge(c); err == nil {
		t.Fatal("header mismatch not rejected")
	}
	d := NewTable("t", "A")
	if err := a.Merge(d); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
}

func TestTableDiff(t *testing.T) {
	mk := func() *Table {
		tb := NewTable("t", "A", "B")
		tb.Add("1", "2")
		tb.Add("3", "4")
		return tb
	}
	if d := Diff(mk(), mk()); d != nil {
		t.Fatalf("identical tables diff: %v", d)
	}
	got := mk()
	got.Rows[1][1] = "9"
	d := Diff(got, mk())
	if len(d) != 1 || !strings.Contains(d[0], "row 1 col 1 (B)") || !strings.Contains(d[0], `got "9" want "4"`) {
		t.Fatalf("cell diff: %v", d)
	}
	got = mk()
	got.Title = "x"
	got.Add("5", "6")
	d = Diff(got, mk())
	if len(d) != 2 {
		t.Fatalf("title+rowcount diff: %v", d)
	}
}
