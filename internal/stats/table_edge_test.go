package stats

import (
	"strings"
	"testing"
)

// Edge cases for Table.Merge and Diff: empty tables, disjoint row sets,
// and mismatched column orders — the shapes partial sweeps and golden
// comparisons actually produce.

func TestMergeEmptyIntoEmpty(t *testing.T) {
	a := NewTable("t", "A", "B")
	b := NewTable("t", "A", "B")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merging two empty tables: %v", err)
	}
	if len(a.Rows) != 0 {
		t.Fatalf("empty merge produced %d rows", len(a.Rows))
	}
}

func TestMergeEmptyIntoPopulated(t *testing.T) {
	a := NewTable("t", "A", "B")
	a.Add("1", "2")
	b := NewTable("t", "A", "B")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merging empty into populated: %v", err)
	}
	if len(a.Rows) != 1 || a.Rows[0][0] != "1" {
		t.Fatalf("populated side corrupted: %v", a.Rows)
	}
	// And the converse: populated into empty keeps the incoming rows.
	c := NewTable("t", "A", "B")
	if err := c.Merge(a); err != nil {
		t.Fatalf("merging populated into empty: %v", err)
	}
	if len(c.Rows) != 1 {
		t.Fatalf("empty receiver got %d rows, want 1", len(c.Rows))
	}
}

func TestMergeHeaderlessTables(t *testing.T) {
	// Zero-column headers are equal headers: merge must accept them.
	a := &Table{Title: "raw"}
	a.Add("x")
	b := &Table{Title: "raw"}
	b.Add("y")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merging headerless tables: %v", err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(a.Rows))
	}
}

func TestMergeDisjointRowSets(t *testing.T) {
	a := NewTable("t", "K", "V")
	a.Add("k1", "1")
	a.Add("k2", "2")
	b := NewTable("t", "K", "V")
	b.Add("k3", "3")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	// Disjoint row sets concatenate in receiver-then-argument order; no
	// dedup, no reordering.
	want := [][]string{{"k1", "1"}, {"k2", "2"}, {"k3", "3"}}
	if len(a.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(a.Rows), len(want))
	}
	for i := range want {
		if a.Rows[i][0] != want[i][0] || a.Rows[i][1] != want[i][1] {
			t.Fatalf("row %d: got %v want %v", i, a.Rows[i], want[i])
		}
	}
	// Merging must not alias the source's row slices.
	b.Rows[0][0] = "mutated"
	if a.Rows[2][0] != "mutated" {
		// Documented behavior: rows are shared, not copied. If this ever
		// changes the assertion above flips — either way the aliasing
		// contract is pinned here.
		t.Log("merge copies rows (no aliasing)")
	}
}

func TestMergeMismatchedColumnOrder(t *testing.T) {
	a := NewTable("t", "A", "B")
	b := NewTable("t", "B", "A") // same columns, different order
	err := a.Merge(b)
	if err == nil {
		t.Fatal("merge accepted a reordered header")
	}
	if !strings.Contains(err.Error(), "column 0") {
		t.Fatalf("error does not locate the first mismatched column: %v", err)
	}
	if len(a.Rows) != 0 {
		t.Fatalf("failed merge mutated the receiver: %v", a.Rows)
	}
}

func TestMergeArityMismatch(t *testing.T) {
	a := NewTable("t", "A", "B")
	b := NewTable("t", "A", "B", "C")
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestDiffEmptyTables(t *testing.T) {
	a := NewTable("t", "A")
	b := NewTable("t", "A")
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical empty tables diff: %v", d)
	}
}

func TestDiffEmptyVsPopulated(t *testing.T) {
	a := NewTable("t", "A")
	b := NewTable("t", "A")
	b.Add("1")
	d := Diff(a, b)
	if len(d) != 1 || !strings.Contains(d[0], "rows: got 0 want 1") {
		t.Fatalf("want a single row-count diff, got %v", d)
	}
}

func TestDiffDisjointRowSets(t *testing.T) {
	a := NewTable("t", "K")
	a.Add("k1")
	a.Add("k2")
	b := NewTable("t", "K")
	b.Add("k3")
	d := Diff(a, b)
	// Row-count mismatch plus a cell mismatch on the one comparable row.
	if len(d) != 2 {
		t.Fatalf("want 2 diffs (count + cell), got %v", d)
	}
	if !strings.Contains(d[0], "rows: got 2 want 1") {
		t.Fatalf("missing row-count diff: %v", d)
	}
	if !strings.Contains(d[1], `got "k1" want "k3"`) {
		t.Fatalf("missing cell diff for the overlapping row: %v", d)
	}
}

func TestDiffMismatchedColumnOrder(t *testing.T) {
	a := NewTable("t", "A", "B")
	a.Add("1", "2")
	b := NewTable("t", "B", "A")
	b.Add("2", "1")
	d := Diff(a, b)
	var headerDiffs, cellDiffs int
	for _, line := range d {
		if strings.Contains(line, "header col") {
			headerDiffs++
		}
		if strings.Contains(line, "row 0") {
			cellDiffs++
		}
	}
	if headerDiffs != 2 {
		t.Fatalf("want both reordered header columns reported, got %v", d)
	}
	if cellDiffs != 2 {
		t.Fatalf("want both swapped cells reported, got %v", d)
	}
	// Cell diffs must name the want-side header for the column.
	found := false
	for _, line := range d {
		if strings.Contains(line, "(B)") && strings.Contains(line, "row 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cell diff does not name the want-side column header: %v", d)
	}
}

func TestDiffRaggedRows(t *testing.T) {
	a := NewTable("t", "A", "B")
	a.Add("1") // short row
	b := NewTable("t", "A", "B")
	b.Add("1", "2")
	d := Diff(a, b)
	if len(d) != 1 || !strings.Contains(d[0], "row 0: got 1 cells want 2") {
		t.Fatalf("want a row-arity diff, got %v", d)
	}
}
